package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/api"
	"repro/internal/campaign"
	"repro/internal/mode"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/stats"
)

// submitRequest and runStatus are the typed wire bodies of the
// campaign endpoints; internal/api owns them (they are shared with
// mmmtail, tests and any other client), this service just serves them.
type (
	submitRequest = api.SubmitRequest
	runStatus     = api.RunStatus
)

// run is one submitted campaign and its execution state.
type run struct {
	mu       sync.Mutex
	seq      int // submission order, for retention eviction
	id       string
	name     string
	scale    campaign.Scale
	workers  int                 // fleet size; 0 = local pool
	prec     *campaign.Precision // normalized adaptive block; nil = fixed batches
	status   string              // queued, running, done, failed, canceled
	total    int
	done     int
	hits     int
	errMsg   string
	wall     time.Duration
	rows     []stats.Row
	report   *campaign.Report // wall-clock attribution, set at terminal state
	started  time.Time
	finished time.Time
	cancel   context.CancelFunc

	// jnl is the run's event journal, created at submission (before the
	// execute goroutine starts) and never reassigned, so reads need no
	// lock; the journal itself is internally synchronized.
	jnl *campaign.Journal
}

func (r *run) snapshot() runStatus {
	r.mu.Lock()
	defer r.mu.Unlock()
	return runStatus{
		ID:          r.id,
		Name:        r.name,
		Scale:       r.scale,
		Status:      r.status,
		Jobs:        r.total,
		Done:        r.done,
		CacheHit:    r.hits,
		Workers:     r.workers,
		Error:       r.errMsg,
		WallMS:      r.wall.Milliseconds(),
		Precision:   r.prec,
		Attribution: r.report,
	}
}

// defaultRetainRuns bounds how many completed (done, failed or
// canceled) runs the server remembers. A long-lived service would
// otherwise grow its runs map — and every completed run's result rows —
// without bound.
const defaultRetainRuns = 128

// server executes submitted campaigns concurrently (bounded by sem) on
// a shared result cache, so overlapping campaigns reuse each other's
// simulations.
type server struct {
	cache      campaign.Cache
	counting   *campaign.CountingCache // same cache, for /status counters; nil when caching is off
	parallel   int
	fleet      []string // default worker URLs; empty = local execution
	coordAddr  string   // job-board bind address for distributed runs
	retain     int      // completed runs kept; older ones are evicted
	debug      bool     // mount /debug/pprof
	journalDir string   // run journals (JSONL); "" keeps journals in memory only
	traceDir   string   // flight-recorder traces for local jobs; "" disables
	traceMatch string   // substring filter on traced jobs' keys
	sem        chan struct{}
	baseCtx    context.Context
	wg         sync.WaitGroup
	started    time.Time

	// Telemetry (initMetrics): the /metrics registry, the fleet lease
	// instruments handed to dispatchers, and the local job-latency
	// histogram fed by engine OnJobTime callbacks.
	reg        *obs.Registry
	fleetObs   *campaign.FleetObs
	jobSeconds *obs.Histogram

	// Flight-recorder volume counters, fed by engine OnTrace callbacks.
	traceEvents  atomic.Uint64
	traceDropped atomic.Uint64

	mu      sync.Mutex
	seq     int
	runs    map[string]*run
	evicted uint64 // completed runs dropped by the retention cap
}

// newServer builds a server. maxCampaigns bounds how many campaigns
// execute at once; parallel bounds each campaign's worker pool.
func newServer(ctx context.Context, cache campaign.Cache, parallel, maxCampaigns int) *server {
	if maxCampaigns < 1 {
		maxCampaigns = 1
	}
	s := &server{
		parallel: parallel,
		retain:   defaultRetainRuns,
		sem:      make(chan struct{}, maxCampaigns),
		baseCtx:  ctx,
		started:  time.Now(),
		runs:     make(map[string]*run),
	}
	if cache != nil {
		// Wrap the shared cache so /status can report hit/miss/store
		// counters across every campaign served by this process.
		s.counting = campaign.NewCountingCache(cache)
		s.cache = s.counting
	}
	s.initMetrics()
	return s
}

// handler routes the service's endpoints. The API surface is
// versioned: every campaign route is canonical under /v1/, and the
// pre-versioning unversioned paths remain as thin aliases that serve
// the same handler while marking the response deprecated (a
// "Deprecation: true" header plus a Link to the successor route), so
// existing clients keep working and see where to migrate.
// /healthz and /metrics are infrastructure endpoints (probes,
// scrapers), not API — they stay unversioned and undeprecated.
func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /metrics", metricsHandler(s.reg))
	for _, rt := range []struct {
		method, path string
		h            http.HandlerFunc
	}{
		{"GET", "/catalog", s.handleCatalog},
		{"GET", "/status", s.handleServiceStatus},
		{"POST", "/campaigns", s.handleSubmit},
		{"GET", "/campaigns", s.handleList},
		{"GET", "/campaigns/{id}", s.handleStatus},
		{"GET", "/campaigns/{id}/results", s.handleResults},
		{"GET", "/campaigns/{id}/events", s.handleEvents},
		{"POST", "/campaigns/{id}/cancel", s.handleCancel},
	} {
		mux.HandleFunc(rt.method+" "+api.PathPrefix+rt.path, rt.h)
		mux.HandleFunc(rt.method+" "+rt.path, deprecatedAlias(rt.h))
	}
	if s.debug {
		mountPprof(mux)
	}
	return accessLog(mux, s.reg)
}

// deprecatedAlias serves a legacy unversioned route through its
// canonical handler, stamping the deprecation headers first.
func deprecatedAlias(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set(api.DeprecationHeader, "true")
		w.Header().Set("Link",
			fmt.Sprintf("<%s%s>; rel=%q", api.PathPrefix, req.URL.Path, api.SuccessorRel))
		h(w, req)
	}
}

// handleCatalog reports the registered campaign names, the mode-policy
// vocabulary, the precision axis adaptive submissions may target, and
// the full per-campaign axes — so operators can discover what a sweep
// runs (and which knobs a submission accepts) without reading source.
func (s *server) handleCatalog(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, api.CatalogResponse{
		Names:     campaign.Names(),
		Policies:  mode.Names(),
		Precision: api.PrecisionAxis(),
		Campaigns: campaign.Catalog(),
	})
}

func (s *server) handleSubmit(w http.ResponseWriter, req *http.Request) {
	var body submitRequest
	if err := json.NewDecoder(req.Body).Decode(&body); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	sc, err := scaleOf(body)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	seeds := body.Seeds
	if len(seeds) == 0 && body.Scale == "quick" {
		// The quick preset means the same jobs here as mmmbench -quick,
		// so the two front ends share cache entries.
		seeds = campaign.QuickSeeds()
	}
	// Validate the policy axis early so a typo answers with the valid
	// names instead of a queued campaign that fails at its first job.
	for _, pol := range body.Policies {
		if pol == "" {
			continue
		}
		if _, err := mode.Parse(pol); err != nil {
			httpError(w, http.StatusBadRequest, "%v", err)
			return
		}
	}
	spec, err := campaign.Named(body.Name, body.Workloads, seeds)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if len(body.Policies) > 0 {
		spec.Policies = body.Policies
	}
	// A submitted precision block overrides the campaign's default (if
	// any): the submission decides whether the run is adaptive.
	if body.Precision != nil {
		spec.Precision = body.Precision
	}
	jobs, err := spec.Expand()
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	// Validate the adaptive block at submission, not at the first wave:
	// an out-of-bounds target answers 400 naming the valid range, and a
	// campaign without fault injection can never satisfy a stopping
	// rule over fault outcomes.
	if spec.Precision != nil {
		p := spec.Precision.Normalized()
		if err := p.Validate(); err != nil {
			httpError(w, http.StatusBadRequest, "%v", err)
			return
		}
		for _, j := range jobs {
			if j.Knobs.FaultInterval <= 0 {
				httpError(w, http.StatusBadRequest,
					"adaptive precision requires fault-injection cells, but %q cell %s injects no faults",
					body.Name, j.Key())
				return
			}
		}
		spec.Precision = &p
	}

	// Placement: an explicit worker list wins, then the service's
	// default fleet; "local":true forces the in-process pool.
	var fleet []string
	if !body.Local {
		for _, wk := range body.Workers {
			if u := campaign.NormalizeWorkerURL(wk); u != "" {
				fleet = append(fleet, u)
			}
		}
		if len(fleet) == 0 {
			fleet = s.fleet
		}
	}

	ctx, cancel := context.WithCancel(s.baseCtx)
	s.mu.Lock()
	s.seq++
	r := &run{
		seq:     s.seq,
		id:      fmt.Sprintf("c%d", s.seq),
		name:    body.Name,
		scale:   sc,
		workers: len(fleet),
		prec:    spec.Precision,
		status:  "queued",
		total:   len(jobs), // adaptive runs: expansion order cells, not waves
		cancel:  cancel,
	}
	s.runs[r.id] = r
	s.mu.Unlock()

	// Every run gets a journal; -journals decides whether it also
	// persists as JSONL. A journal-file error degrades to memory-only
	// rather than rejecting the submission — journaling is
	// observational, never load-bearing for the campaign.
	var jpath string
	if s.journalDir != "" {
		jpath = filepath.Join(s.journalDir, r.id+".journal.jsonl")
	}
	jnl, jerr := campaign.NewJournal(r.id, jpath)
	if jerr != nil {
		log.Printf("mmmd: journal for %s: %v (falling back to memory-only)", r.id, jerr)
		jnl, _ = campaign.NewJournal(r.id, "")
	}
	r.jnl = jnl

	s.wg.Add(1)
	go s.execute(ctx, r, spec, fleet)

	writeJSON(w, http.StatusAccepted, r.snapshot())
}

// execute runs one campaign to completion, respecting the
// per-service concurrency bound. A non-empty fleet shards the jobs
// across remote workers via the lease protocol; otherwise the local
// bounded pool runs them. Both paths share the service cache, so a
// campaign started locally finishes remotely (and vice versa) without
// re-simulating. Specs with a precision block run adaptively on
// either path — campaign.RunSpec routes them.
func (s *server) execute(ctx context.Context, r *run, spec campaign.Spec, fleet []string) {
	defer s.wg.Done()
	defer r.cancel()

	select {
	case s.sem <- struct{}{}:
		defer func() { <-s.sem }()
	case <-ctx.Done():
		r.jnl.Finish(ctx.Err())
		r.finish(nil, nil, ctx.Err())
		r.attribute()
		s.reap()
		return
	}

	r.mu.Lock()
	r.status = "running"
	r.started = time.Now()
	r.mu.Unlock()

	onProgress := func(done, total, hits int) {
		r.mu.Lock()
		r.done, r.hits = done, hits
		r.mu.Unlock()
	}
	var runner campaign.Runner
	if len(fleet) > 0 {
		runner = campaign.NewDispatcher(campaign.DispatchOptions{
			Workers:    fleet,
			Cache:      s.cache,
			Addr:       campaign.CoordinatorAddr(s.coordAddr),
			OnProgress: onProgress,
			Obs:        s.fleetObs,
			Journal:    r.jnl,
		})
	} else {
		runner = campaign.New(campaign.Options{
			Parallel:   s.parallel,
			Cache:      s.cache,
			OnProgress: onProgress,
			OnJobTime:  func(d time.Duration) { s.jobSeconds.Observe(d.Seconds()) },
			Journal:    r.jnl,
			TraceDir:   s.traceDir,
			TraceMatch: s.traceMatch,
			OnTrace: func(total, dropped uint64) {
				s.traceEvents.Add(total)
				s.traceDropped.Add(dropped)
			},
		})
	}
	rs, err := campaign.RunSpec(ctx, runner, r.scale, spec)
	r.jnl.Finish(err)
	if err != nil {
		r.finish(nil, nil, err)
		r.attribute()
		s.reap()
		return
	}
	r.finish(rs, campaign.Summarize(rs), nil)
	r.attribute()
	s.reap()
}

// attribute derives the run's wall-clock attribution report from its
// journal; called once the run is terminal (the journal is closed).
func (r *run) attribute() {
	if r.jnl == nil {
		return
	}
	rep := campaign.Attribute(r.id, r.jnl.Events())
	r.mu.Lock()
	r.report = &rep
	r.mu.Unlock()
}

// reap enforces the completed-run retention cap: when more than retain
// runs have reached a terminal state (done, failed, canceled), the
// oldest are evicted from the runs map. Queued and running campaigns
// are never touched.
func (s *server) reap() {
	s.mu.Lock()
	defer s.mu.Unlock()
	var terminal []*run
	for _, r := range s.runs {
		r.mu.Lock()
		st := r.status
		r.mu.Unlock()
		if st == "done" || st == "failed" || st == "canceled" {
			terminal = append(terminal, r)
		}
	}
	if len(terminal) <= s.retain {
		return
	}
	sort.Slice(terminal, func(i, j int) bool { return terminal[i].seq < terminal[j].seq })
	for _, r := range terminal[:len(terminal)-s.retain] {
		delete(s.runs, r.id)
		s.evicted++
		// The retention cap bounds journal disk too: an evicted run's
		// JSONL file goes with it.
		if p := r.jnl.Path(); p != "" {
			if err := os.Remove(p); err != nil && !os.IsNotExist(err) {
				log.Printf("mmmd: evict journal %s: %v", p, err)
			}
		}
	}
}

// finish records a campaign's terminal state.
func (r *run) finish(rs *campaign.ResultSet, rows []stats.Row, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.finished = time.Now()
	if !r.started.IsZero() {
		r.wall = r.finished.Sub(r.started)
	}
	switch {
	case errors.Is(err, context.Canceled):
		// errors.Is, not ==: the engine may surface a wrapped
		// cancellation (fmt.Errorf %w, context.Cause) and a canceled
		// run must never be reported as failed.
		r.status = "canceled"
	case err != nil:
		r.status = "failed"
		r.errMsg = err.Error()
	default:
		r.status = "done"
		r.rows = rows
		r.hits = rs.Hits
		r.done = len(rs.Results)
		r.wall = rs.Wall
	}
}

func (s *server) lookup(w http.ResponseWriter, req *http.Request) *run {
	s.mu.Lock()
	r := s.runs[req.PathValue("id")]
	s.mu.Unlock()
	if r == nil {
		httpError(w, http.StatusNotFound, "no campaign %q", req.PathValue("id"))
	}
	return r
}

// handleServiceStatus reports service-level health: uptime, runs by
// state, per-run progress snapshots, and the shared result cache's
// hit/miss/store counters.
func (s *server) handleServiceStatus(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	byStatus := map[string]int{}
	total := len(s.runs)
	runs := make([]*run, 0, len(s.runs))
	for _, r := range s.runs {
		r.mu.Lock()
		byStatus[r.status]++
		r.mu.Unlock()
		runs = append(runs, r)
	}
	evicted := s.evicted
	s.mu.Unlock()

	snaps := make([]runStatus, 0, len(runs))
	for _, r := range runs {
		snaps = append(snaps, r.snapshot())
	}
	sort.Slice(snaps, func(i, j int) bool {
		a, b := snaps[i].ID, snaps[j].ID
		if len(a) != len(b) {
			return len(a) < len(b)
		}
		return a < b
	})

	out := map[string]any{
		"status":    "ok",
		"uptime_ms": time.Since(s.started).Milliseconds(),
		"campaigns": map[string]any{"total": total, "by_status": byStatus, "evicted": evicted},
		"runs":      snaps,
	}
	if s.counting != nil {
		hits, misses, puts := s.counting.Stats()
		out["cache"] = map[string]uint64{"hits": hits, "misses": misses, "stores": puts}
	} else {
		out["cache"] = nil
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *server) handleList(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	ids := make([]*run, 0, len(s.runs))
	for _, r := range s.runs {
		ids = append(ids, r)
	}
	s.mu.Unlock()
	out := make([]runStatus, 0, len(ids))
	for _, r := range ids {
		out = append(out, r.snapshot())
	}
	// Submission order: ids are "c<seq>", so shorter ids sort first.
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].ID, out[j].ID
		if len(a) != len(b) {
			return len(a) < len(b)
		}
		return a < b
	})
	writeJSON(w, http.StatusOK, map[string]any{"campaigns": out})
}

func (s *server) handleStatus(w http.ResponseWriter, req *http.Request) {
	if r := s.lookup(w, req); r != nil {
		writeJSON(w, http.StatusOK, r.snapshot())
	}
}

func (s *server) handleResults(w http.ResponseWriter, req *http.Request) {
	r := s.lookup(w, req)
	if r == nil {
		return
	}
	r.mu.Lock()
	status, rows := r.status, r.rows
	r.mu.Unlock()
	if status != "done" {
		httpError(w, http.StatusConflict, "campaign %s is %s, results require done", r.id, status)
		return
	}
	switch req.URL.Query().Get("format") {
	case "", "json":
		w.Header().Set("Content-Type", "application/json")
		_ = stats.WriteRowsJSON(w, rows)
	case "csv":
		w.Header().Set("Content-Type", "text/csv")
		_ = stats.WriteRowsCSV(w, rows)
	default:
		httpError(w, http.StatusBadRequest, "unknown format %q (json, csv)", req.URL.Query().Get("format"))
	}
}

func (s *server) handleCancel(w http.ResponseWriter, req *http.Request) {
	r := s.lookup(w, req)
	if r == nil {
		return
	}
	r.cancel()
	writeJSON(w, http.StatusOK, r.snapshot())
}

// drain waits for all campaign goroutines to finish; the caller cancels
// the base context first during shutdown.
func (s *server) drain() { s.wg.Wait() }

// scaleOf resolves the request's scale preset and overrides. Overrides
// are pointers: present-but-zero is applied (a zero-warmup campaign is
// legitimate), absent means "keep the preset".
func scaleOf(body submitRequest) (campaign.Scale, error) {
	var sc campaign.Scale
	switch body.Scale {
	case "", "default":
		sc = campaign.DefaultScale()
	case "quick":
		sc = campaign.QuickScale()
	default:
		return sc, fmt.Errorf("unknown scale %q (default, quick)", body.Scale)
	}
	if body.Warmup != nil {
		sc.Warmup = sim.Cycle(*body.Warmup)
	}
	if body.Measure != nil {
		if *body.Measure == 0 {
			return sc, fmt.Errorf("measure must be positive")
		}
		sc.Measure = sim.Cycle(*body.Measure)
	}
	if body.Timeslice != nil {
		if *body.Timeslice == 0 {
			return sc, fmt.Errorf("timeslice must be positive")
		}
		sc.Timeslice = sim.Cycle(*body.Timeslice)
	}
	return sc, nil
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}
