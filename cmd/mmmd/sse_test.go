package main

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"repro/internal/campaign"
)

// sseFrame is one parsed server-sent event.
type sseFrame struct {
	id    int64
	event string
	data  string
}

// readSSE consumes an SSE response body until the terminal "end" frame
// (which is returned as the last element) or EOF.
func readSSE(t *testing.T, req *http.Request) []sseFrame {
	t.Helper()
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	var frames []sseFrame
	var cur sseFrame
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if cur.event != "" || cur.data != "" {
				frames = append(frames, cur)
				if cur.event == "end" {
					return frames
				}
			}
			cur = sseFrame{}
		case strings.HasPrefix(line, "id: "):
			n, err := strconv.ParseInt(line[4:], 10, 64)
			if err != nil {
				t.Fatalf("bad id line %q", line)
			}
			cur.id = n
		case strings.HasPrefix(line, "event: "):
			cur.event = line[7:]
		case strings.HasPrefix(line, "data: "):
			cur.data = line[6:]
		case strings.HasPrefix(line, ":"):
			// keepalive comment
		default:
			t.Fatalf("unexpected SSE line %q", line)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	t.Fatal("stream ended without an end frame")
	return nil
}

// TestEventsStreamsFullJournal: GET /campaigns/{id}/events replays a
// finished run's journal as SSE — expanded first, one merged frame per
// cell in expansion order, strictly increasing ids, a terminal end
// frame — and the merged payloads parse back into journal events.
func TestEventsStreamsFullJournal(t *testing.T) {
	ts := testService(t)
	st := submitAndWait(t, ts, micro)
	if st.Status != "done" {
		t.Fatalf("campaign: %+v", st)
	}

	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/campaigns/"+st.ID+"/events", nil)
	frames := readSSE(t, req)
	if len(frames) < 3 {
		t.Fatalf("only %d frames", len(frames))
	}
	if frames[0].event != "expanded" {
		t.Fatalf("first frame %q, want expanded", frames[0].event)
	}
	if last := frames[len(frames)-1]; last.event != "end" || !strings.Contains(last.data, st.ID) {
		t.Fatalf("last frame: %+v", last)
	}

	var lastID int64
	merged, nextCell := 0, 0
	for _, f := range frames[:len(frames)-1] {
		if f.id <= lastID {
			t.Fatalf("ids not increasing: %d after %d", f.id, lastID)
		}
		lastID = f.id
		var ev campaign.Event
		if err := json.Unmarshal([]byte(f.data), &ev); err != nil {
			t.Fatalf("frame data %q: %v", f.data, err)
		}
		if string(ev.Type) != f.event || ev.Seq != f.id {
			t.Fatalf("frame fields disagree with payload: %+v vs %+v", f, ev)
		}
		if ev.Type == campaign.EventMerged {
			if ev.Cell != nextCell {
				t.Fatalf("merged cell %d, want %d", ev.Cell, nextCell)
			}
			nextCell++
			merged++
		}
	}
	if merged != st.Jobs {
		t.Fatalf("streamed %d merged frames for %d jobs", merged, st.Jobs)
	}
}

// TestEventsStreamsLive: a client connected while the campaign is
// still running receives history-then-live frames through to the end —
// the same complete, ordered journal a post-hoc reader gets.
func TestEventsStreamsLive(t *testing.T) {
	ts := testService(t)
	code, data := do(t, http.MethodPost, ts.URL+"/campaigns", micro)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", code, data)
	}
	var st runStatus
	if err := json.Unmarshal(data, &st); err != nil {
		t.Fatal(err)
	}

	// Connect immediately: the run is typically still executing, so the
	// stream crosses the history/live boundary.
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/campaigns/"+st.ID+"/events", nil)
	frames := readSSE(t, req)
	types := map[string]int{}
	for _, f := range frames {
		types[f.event]++
	}
	if types["expanded"] != 1 || types["merged"] == 0 || types["end"] != 1 {
		t.Fatalf("live stream shape: %v", types)
	}
	fin := submitAndWait(t, ts, micro) // second run, same cells: all cached
	if types["merged"] != fin.Jobs {
		t.Fatalf("live stream merged %d frames for %d jobs", types["merged"], fin.Jobs)
	}
}

// TestEventsResume: ?after=N (and the standard Last-Event-ID header)
// resumes the stream mid-journal without replaying delivered events;
// a malformed resume point answers 400.
func TestEventsResume(t *testing.T) {
	ts := testService(t)
	st := submitAndWait(t, ts, micro)
	if st.Status != "done" {
		t.Fatalf("campaign: %+v", st)
	}
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/campaigns/"+st.ID+"/events", nil)
	full := readSSE(t, req)
	cut := full[len(full)/2]
	if cut.id == 0 {
		t.Fatalf("cut frame has no id: %+v", cut)
	}

	// Query resume.
	req, _ = http.NewRequest(http.MethodGet,
		ts.URL+"/campaigns/"+st.ID+"/events?after="+strconv.FormatInt(cut.id, 10), nil)
	tail := readSSE(t, req)
	if want := full[len(full)/2+1:]; len(tail) != len(want) {
		t.Fatalf("resumed stream has %d frames, want %d", len(tail), len(want))
	} else if tail[0].id != want[0].id {
		t.Fatalf("resume starts at id %d, want %d", tail[0].id, want[0].id)
	}

	// Header resume behaves identically.
	req, _ = http.NewRequest(http.MethodGet, ts.URL+"/campaigns/"+st.ID+"/events", nil)
	req.Header.Set("Last-Event-ID", strconv.FormatInt(cut.id, 10))
	viaHeader := readSSE(t, req)
	if len(viaHeader) != len(tail) || viaHeader[0].id != tail[0].id {
		t.Fatalf("header resume diverges from query resume: %d/%d frames",
			len(viaHeader), len(tail))
	}

	// Malformed resume points are rejected, not treated as zero.
	for _, bad := range []string{"?after=nope", "?after=-3"} {
		if code, _ := do(t, http.MethodGet, ts.URL+"/campaigns/"+st.ID+"/events"+bad, ""); code != http.StatusBadRequest {
			t.Errorf("resume %s: code %d, want 400", bad, code)
		}
	}
	if code, _ := do(t, http.MethodGet, ts.URL+"/campaigns/c99/events", ""); code != http.StatusNotFound {
		t.Errorf("events of unknown run: %d, want 404", code)
	}
}

// TestStatusCarriesAttribution: once a run is terminal, GET
// /campaigns/{id} includes the journal-derived wall-clock attribution.
func TestStatusCarriesAttribution(t *testing.T) {
	ts := testService(t)
	st := submitAndWait(t, ts, micro)
	if st.Status != "done" {
		t.Fatalf("campaign: %+v", st)
	}
	if st.Attribution == nil {
		t.Fatal("terminal status has no attribution report")
	}
	rep := st.Attribution
	if rep.Outcome != "done" || rep.Cells != st.Jobs || rep.Merged != st.Jobs {
		t.Fatalf("attribution: %+v", rep)
	}
	if len(rep.Workers) == 0 || rep.BusySeconds <= 0 {
		t.Fatalf("attribution has no worker time: %+v", rep)
	}
	// A warm rerun attributes everything to the cache.
	st2 := submitAndWait(t, ts, micro)
	if st2.Attribution == nil || st2.Attribution.CacheHits != st2.Jobs ||
		st2.Attribution.CacheHitPct != 100 {
		t.Fatalf("warm attribution: %+v", st2.Attribution)
	}
}

// TestJournalFilesPersistAndEvict: with -journals set, each run writes
// <dir>/<id>.journal.jsonl, the file validates and replays, the
// retention cap deletes evicted runs' files, and /metrics reports the
// remaining journal bytes.
func TestJournalFilesPersistAndEvict(t *testing.T) {
	cache, err := campaign.NewDiskCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	srv := newServer(context.Background(), cache, 2, 2)
	srv.retain = 1
	srv.journalDir = dir
	ts := httptest.NewServer(srv.handler())
	t.Cleanup(ts.Close)

	var last runStatus
	for i := 0; i < 3; i++ {
		last = submitAndWait(t, ts, micro)
		if last.Status != "done" {
			t.Fatalf("run %d: %+v", i, last)
		}
	}

	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != last.ID+".journal.jsonl" {
		names := make([]string, 0, len(entries))
		for _, e := range entries {
			names = append(names, e.Name())
		}
		t.Fatalf("journal dir after eviction: %v, want only %s.journal.jsonl", names, last.ID)
	}

	// The surviving journal is a valid, complete record.
	events, err := campaign.ReadJournalFile(filepath.Join(dir, entries[0].Name()))
	if err != nil {
		t.Fatal(err)
	}
	chk, err := campaign.ValidateEvents(events)
	if err != nil || !chk.Complete || chk.Outcome != "done" {
		t.Fatalf("surviving journal: %+v, %v", chk, err)
	}
	if _, err := campaign.ReplayResults(events); err != nil {
		t.Fatal(err)
	}

	// /metrics reports the on-disk journal footprint.
	if n := journalBytes(dir); n <= 0 {
		t.Fatalf("journalBytes(%s) = %d, want > 0", dir, n)
	}
	_, data := do(t, http.MethodGet, ts.URL+"/metrics", "")
	if !strings.Contains(string(data), "mmmd_journal_bytes") {
		t.Fatalf("mmmd_journal_bytes missing from /metrics:\n%s", data)
	}
	for _, line := range strings.Split(string(data), "\n") {
		if strings.HasPrefix(line, "mmmd_journal_bytes ") {
			if v, err := strconv.ParseFloat(strings.Fields(line)[1], 64); err != nil || v <= 0 {
				t.Fatalf("mmmd_journal_bytes = %q, want > 0", line)
			}
		}
	}
}

// TestStatusWriterFlushes: the access-log ResponseWriter wrapper must
// forward Flush, or SSE frames would buffer until the run ends.
func TestStatusWriterFlushes(t *testing.T) {
	rec := httptest.NewRecorder()
	sw := &statusWriter{ResponseWriter: rec, code: http.StatusOK}
	if _, ok := interface{}(sw).(http.Flusher); !ok {
		t.Fatal("statusWriter does not implement http.Flusher")
	}
	sw.Flush()
	if !rec.Flushed {
		t.Fatal("Flush not forwarded to the underlying writer")
	}
}
