// Command mmmd serves the Mixed-Mode Multicore simulation sweeps over
// HTTP: submit a named campaign, poll its progress, fetch its
// aggregated results as JSON or CSV. Completed jobs land in a
// content-addressed on-disk cache shared by every campaign, so
// re-submitted or overlapping sweeps resume from cached results
// instead of re-simulating.
//
//	mmmd -addr :8077 -cache ./mmmd-cache
//
//	curl localhost:8077/catalog
//	curl -X POST localhost:8077/campaigns \
//	    -d '{"name":"figure5","scale":"quick"}'
//	curl localhost:8077/campaigns/c1
//	curl localhost:8077/campaigns/c1/results
//	curl 'localhost:8077/campaigns/c1/results?format=csv'
//	curl -X POST localhost:8077/campaigns/c1/cancel
//
// With -worker, mmmd is instead one node of a simulation fleet: it
// serves the attach endpoint and pulls jobs from any coordinator that
// invites it, leasing one job per capacity slot, heartbeating while
// it simulates, and returning canonical metrics plus the job's cache
// key:
//
//	mmmd -worker -addr :8078 -name node1 -capacity 8 -cache ./w-cache
//
// A coordinator-side service shards submitted campaigns across such
// workers when started with a fleet (or when the submission names
// one):
//
//	mmmd -addr :8077 -workers node1:8078,node2:8078
//	curl -X POST localhost:8077/campaigns \
//	    -d '{"name":"figure5","scale":"quick","workers":["node3:8078"]}'
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os/signal"
	"path/filepath"
	"runtime"
	"syscall"
	"time"

	"repro/internal/campaign"
	"repro/internal/obs"
)

func main() {
	var (
		addr      = flag.String("addr", ":8077", "listen address")
		cacheDir  = flag.String("cache", "mmmd-cache", "result cache directory (empty disables caching)")
		parallel  = flag.Int("parallel", runtime.NumCPU(), "worker-pool size per campaign (local execution)")
		campaigns = flag.Int("campaigns", 2, "campaigns executing concurrently")
		workers   = flag.String("workers", "", "comma-separated worker fleet (host:port,...); campaigns shard across it by default")
		coord     = flag.String("coordinator", "", "job-board bind address for distributed campaigns (host[:port]); set a host the workers can reach for cross-host fleets (default loopback; omit the port so concurrent campaigns get their own)")
		worker    = flag.Bool("worker", false, "run as a fleet worker instead of the campaign service")
		name      = flag.String("name", "", "worker name reported to coordinators (default: the listen address)")
		capacity  = flag.Int("capacity", runtime.NumCPU(), "concurrent leased jobs in -worker mode")
		debug     = flag.Bool("debug", false, "expose /debug/pprof profiling endpoints")
		journals  = flag.String("journals", "", "run-journal directory (default <cache>/journals; 'none' keeps journals in memory only)")
		traceDir  = flag.String("trace-dir", "", "write flight-recorder traces for simulated jobs here (empty disables)")
		traceSel  = flag.String("trace-match", "", "only trace jobs whose key contains this substring")
	)
	flag.Parse()

	var cache campaign.Cache
	if *cacheDir != "" {
		dc, err := campaign.NewDiskCache(*cacheDir)
		if err != nil {
			log.Fatalf("mmmd: %v", err)
		}
		cache = dc
		log.Printf("mmmd: result cache at %s", dc.Dir())
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	if *worker {
		runWorker(ctx, *addr, *name, *capacity, cache, *debug, *traceDir, *traceSel)
		return
	}

	// Journals persist beside the result cache by default; "none" (or
	// running cacheless without an explicit -journals) keeps the event
	// streams in memory only.
	journalDir := *journals
	switch journalDir {
	case "":
		if *cacheDir != "" {
			journalDir = filepath.Join(*cacheDir, "journals")
		}
	case "none":
		journalDir = ""
	}

	srv := newServer(ctx, cache, *parallel, *campaigns)
	srv.fleet = campaign.ParseWorkerList(*workers)
	srv.coordAddr = *coord
	srv.debug = *debug
	srv.journalDir = journalDir
	srv.traceDir = *traceDir
	srv.traceMatch = *traceSel
	if journalDir != "" {
		log.Printf("mmmd: run journals at %s", journalDir)
	}
	httpSrv := &http.Server{Addr: *addr, Handler: srv.handler()}

	go func() {
		<-ctx.Done()
		// Graceful shutdown: stop accepting requests, cancel running
		// campaigns, and drain the workers. Cancelling a distributed
		// campaign revokes every outstanding worker lease before its
		// runner returns, so a SIGTERM'd coordinator leaves no orphans
		// and a restart resumes from the cache without double-counting
		// any job (completed jobs are already cached).
		shCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shCtx); err != nil {
			log.Printf("mmmd: shutdown: %v", err)
		}
	}()

	if n := len(srv.fleet); n > 0 {
		log.Printf("mmmd: default fleet of %d workers: %v", n, srv.fleet)
	}
	log.Printf("mmmd: listening on %s (%d workers, %d concurrent campaigns)",
		*addr, *parallel, *campaigns)
	if err := httpSrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("mmmd: %v", err)
	}
	srv.drain()
	log.Print("mmmd: drained, bye")
}

// runWorker serves one fleet node until SIGINT/SIGTERM. On shutdown
// it abandons in-flight leases — coordinators expire and reassign
// them, and per-job derived seeds make the reassigned runs
// byte-identical — so killing a worker never corrupts a campaign.
func runWorker(ctx context.Context, addr, name string, capacity int, cache campaign.Cache, debug bool, traceDir, traceMatch string) {
	if name == "" {
		name = addr
	}
	// jobSeconds and traces are bound after the worker exists (the
	// registry's collector snapshots the worker's counters); Observe on
	// a nil histogram is a no-op, so the indirection is safe.
	var jobSeconds *obs.Histogram
	var traces *traceCounters
	w := campaign.NewWorker(campaign.WorkerOptions{
		Name:       name,
		Capacity:   capacity,
		Cache:      cache,
		OnJobTime:  func(d time.Duration) { jobSeconds.Observe(d.Seconds()) },
		TraceDir:   traceDir,
		TraceMatch: traceMatch,
		OnTrace:    func(total, dropped uint64) { traces.add(total, dropped) },
	})
	reg, js, tc := workerRegistry(w, time.Now())
	jobSeconds, traces = js, tc

	// Worker nodes expose the same observability surface as the
	// coordinator: /metrics always, pprof only behind -debug. The
	// protocol endpoints keep their own mux so the lease paths are
	// untouched.
	mux := http.NewServeMux()
	mux.Handle("/", w.Handler())
	mux.HandleFunc("GET /metrics", metricsHandler(reg))
	if debug {
		mountPprof(mux)
	}
	httpSrv := &http.Server{Addr: addr, Handler: accessLog(mux, reg)}

	go func() {
		<-ctx.Done()
		shCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shCtx); err != nil {
			log.Printf("mmmd worker: shutdown: %v", err)
		}
	}()

	log.Printf("mmmd worker %s: listening on %s (capacity %d)", name, addr, capacity)
	if err := httpSrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("mmmd worker: %v", err)
	}
	w.Stop()
	log.Printf("mmmd worker %s: detached, bye", name)
}
