// Command mmmd serves the Mixed-Mode Multicore simulation sweeps over
// HTTP: submit a named campaign, poll its progress, fetch its
// aggregated results as JSON or CSV. Completed jobs land in a
// content-addressed on-disk cache shared by every campaign, so
// re-submitted or overlapping sweeps resume from cached results
// instead of re-simulating.
//
//	mmmd -addr :8077 -cache ./mmmd-cache
//
//	curl localhost:8077/catalog
//	curl -X POST localhost:8077/campaigns \
//	    -d '{"name":"figure5","scale":"quick"}'
//	curl localhost:8077/campaigns/c1
//	curl localhost:8077/campaigns/c1/results
//	curl 'localhost:8077/campaigns/c1/results?format=csv'
//	curl -X POST localhost:8077/campaigns/c1/cancel
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/campaign"
)

func main() {
	var (
		addr      = flag.String("addr", ":8077", "listen address")
		cacheDir  = flag.String("cache", "mmmd-cache", "result cache directory (empty disables caching)")
		parallel  = flag.Int("parallel", runtime.NumCPU(), "worker-pool size per campaign")
		campaigns = flag.Int("campaigns", 2, "campaigns executing concurrently")
	)
	flag.Parse()

	var cache campaign.Cache
	if *cacheDir != "" {
		dc, err := campaign.NewDiskCache(*cacheDir)
		if err != nil {
			log.Fatalf("mmmd: %v", err)
		}
		cache = dc
		log.Printf("mmmd: result cache at %s", dc.Dir())
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	srv := newServer(ctx, cache, *parallel, *campaigns)
	httpSrv := &http.Server{Addr: *addr, Handler: srv.handler()}

	go func() {
		<-ctx.Done()
		// Graceful shutdown: stop accepting requests, cancel running
		// campaigns (completed jobs are already cached, so they resume
		// on the next submission), and drain the workers.
		shCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shCtx); err != nil {
			log.Printf("mmmd: shutdown: %v", err)
		}
	}()

	log.Printf("mmmd: listening on %s (%d workers, %d concurrent campaigns)",
		*addr, *parallel, *campaigns)
	if err := httpSrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("mmmd: %v", err)
	}
	srv.drain()
	log.Print("mmmd: drained, bye")
}
