package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/api"
)

// doResp is do with access to the response headers.
func doResp(t *testing.T, method, url, body string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

// TestV1CanonicalAndLegacyAliases: every route serves under /v1
// without deprecation marks, the unversioned spellings still answer —
// bytes identical — but carry the Deprecation header and a Link to
// their successor. Infrastructure endpoints (/healthz, /metrics) are
// unversioned and never deprecated.
func TestV1CanonicalAndLegacyAliases(t *testing.T) {
	ts := testService(t)

	for _, path := range []string{"/catalog", "/campaigns"} {
		v1 := doResp(t, http.MethodGet, ts.URL+api.PathPrefix+path, "")
		if v1.StatusCode != http.StatusOK {
			t.Fatalf("GET /v1%s: %d", path, v1.StatusCode)
		}
		if v1.Header.Get(api.DeprecationHeader) != "" {
			t.Fatalf("canonical /v1%s marked deprecated", path)
		}

		legacy := doResp(t, http.MethodGet, ts.URL+path, "")
		if legacy.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %d", path, legacy.StatusCode)
		}
		if legacy.Header.Get(api.DeprecationHeader) != "true" {
			t.Fatalf("legacy %s missing %s header", path, api.DeprecationHeader)
		}
		link := legacy.Header.Get("Link")
		if !strings.Contains(link, api.PathPrefix+path) ||
			!strings.Contains(link, api.SuccessorRel) {
			t.Fatalf("legacy %s Link header %q does not name its successor", path, link)
		}
	}

	for _, path := range []string{"/healthz"} {
		resp := doResp(t, http.MethodGet, ts.URL+path, "")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %d", path, resp.StatusCode)
		}
		if resp.Header.Get(api.DeprecationHeader) != "" {
			t.Fatalf("infrastructure endpoint %s marked deprecated", path)
		}
	}
}

// TestV1ServesFullFlow drives an entire campaign lifecycle through
// /v1 paths only: submit, status poll, results, listing, cancel of a
// second run — no legacy spelling anywhere.
func TestV1ServesFullFlow(t *testing.T) {
	ts := testService(t)

	code, data := do(t, http.MethodPost, ts.URL+"/v1/campaigns", micro)
	if code != http.StatusAccepted {
		t.Fatalf("v1 submit: %d %s", code, data)
	}
	var st runStatus
	if err := json.Unmarshal(data, &st); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Minute)
	for st.Status != "done" {
		if st.Status == "failed" || st.Status == "canceled" || time.Now().After(deadline) {
			t.Fatalf("campaign: %+v", st)
		}
		time.Sleep(20 * time.Millisecond)
		code, data = do(t, http.MethodGet, ts.URL+"/v1/campaigns/"+st.ID, "")
		if code != http.StatusOK {
			t.Fatalf("v1 status: %d %s", code, data)
		}
		if err := json.Unmarshal(data, &st); err != nil {
			t.Fatal(err)
		}
	}

	code, res := do(t, http.MethodGet, ts.URL+"/v1/campaigns/"+st.ID+"/results", "")
	if code != http.StatusOK || !bytes.Contains(res, []byte(`"key"`)) {
		t.Fatalf("v1 results: %d %s", code, res)
	}

	// The legacy spelling returns the same bytes, just deprecated.
	code, legacy := do(t, http.MethodGet, ts.URL+"/campaigns/"+st.ID+"/results", "")
	if code != http.StatusOK || !bytes.Equal(res, legacy) {
		t.Fatalf("legacy results diverge from v1: %d", code)
	}

	code, data = do(t, http.MethodGet, ts.URL+"/v1/campaigns", "")
	if code != http.StatusOK {
		t.Fatalf("v1 list: %d", code)
	}
	var list api.RunList
	if err := json.Unmarshal(data, &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Campaigns) != 1 || list.Campaigns[0].ID != st.ID {
		t.Fatalf("v1 list: %s", data)
	}
}

// TestCatalogAdvertisesPrecisionAxis: GET /v1/catalog tells clients
// what an adaptive submission may target — metrics and half-width
// bounds — and marks the registered adaptive campaign with its default
// precision block.
func TestCatalogAdvertisesPrecisionAxis(t *testing.T) {
	ts := testService(t)
	code, data := do(t, http.MethodGet, ts.URL+"/v1/catalog", "")
	if code != http.StatusOK {
		t.Fatalf("catalog: %d", code)
	}
	var cat api.CatalogResponse
	if err := json.Unmarshal(data, &cat); err != nil {
		t.Fatal(err)
	}
	if len(cat.Names) == 0 || len(cat.Policies) == 0 {
		t.Fatalf("catalog missing names or policies: %s", data)
	}
	ax := cat.Precision
	if ax.MinHalfWidth != api.MinHalfWidth || ax.MaxHalfWidth != api.MaxHalfWidth {
		t.Fatalf("advertised precision bounds %+v", ax)
	}
	found := false
	for _, m := range ax.Metrics {
		if m == "coverage" {
			found = true
		}
	}
	if !found {
		t.Fatalf("precision axis does not offer coverage: %+v", ax)
	}
	adaptive := false
	for _, c := range cat.Campaigns {
		if c.Name == "relia-adaptive" {
			adaptive = true
			if c.Precision == nil || c.Precision.HalfWidth != 0.05 {
				t.Fatalf("relia-adaptive catalog entry lacks its precision block: %+v", c.Precision)
			}
		}
	}
	if !adaptive {
		t.Fatal("catalog does not list relia-adaptive")
	}
}

// TestSubmitInvalidPrecisionRejected: precision blocks outside the
// advertised bounds — or aimed at campaigns without fault-injection
// cells — come back as 400s that name what to fix.
func TestSubmitInvalidPrecisionRejected(t *testing.T) {
	ts := testService(t)
	cases := []struct {
		body string
		want string
	}{
		{`{"name":"relia","precision":{"half_width":0.5}}`, "half_width"},
		{`{"name":"relia","precision":{"half_width":0.0000001}}`, "0.001"},
		{`{"name":"relia","precision":{"metric":"latency","half_width":0.05}}`, "coverage"},
		{`{"name":"figure5","precision":{"half_width":0.05}}`, "fault"},
	}
	for _, c := range cases {
		code, data := do(t, http.MethodPost, ts.URL+"/v1/campaigns", c.body)
		if code != http.StatusBadRequest {
			t.Errorf("submit %s: code %d, want 400", c.body, code)
			continue
		}
		var e api.ErrorResponse
		if err := json.Unmarshal(data, &e); err != nil || !strings.Contains(e.Error, c.want) {
			t.Errorf("submit %s: error %q does not name %q", c.body, e.Error, c.want)
		}
	}
}

// TestAdaptiveSubmitRunsToCompletion: an adaptive submission over /v1
// runs waves to retirement, echoes its normalized precision block in
// the status, and attributes the trials saved against the fixed
// worst case.
func TestAdaptiveSubmitRunsToCompletion(t *testing.T) {
	ts := testService(t)
	body := `{"name":"relia","scale":"quick",` +
		`"warmup":20000,"measure":60000,"timeslice":15000,` +
		`"workloads":["apache"],"seeds":[11],` +
		`"precision":{"half_width":0.2,"wave_trials":2,"min_trials":2,"max_trials":6}}`
	st := submitV1AndWait(t, ts, body)
	if st.Status != "done" {
		t.Fatalf("adaptive run: %+v", st)
	}
	if st.Precision == nil || st.Precision.MaxTrials != 6 || st.Precision.Metric != "coverage" {
		t.Fatalf("status does not echo the normalized precision block: %+v", st.Precision)
	}
	if st.Done != st.Jobs {
		t.Fatalf("adaptive run finished with %d/%d cells", st.Done, st.Jobs)
	}
	rep := st.Attribution
	if rep == nil || !rep.Adaptive {
		t.Fatalf("attribution not adaptive: %+v", rep)
	}
	if rep.TrialsFixed != st.Jobs*st.Precision.MaxTrials {
		t.Fatalf("fixed-equivalent %d, want cells x max = %d",
			rep.TrialsFixed, st.Jobs*st.Precision.MaxTrials)
	}
	if rep.TrialsScheduled <= 0 || rep.TrialsScheduled > rep.TrialsFixed {
		t.Fatalf("scheduled %d trials of fixed %d", rep.TrialsScheduled, rep.TrialsFixed)
	}
	if rep.CellsRetired != st.Jobs {
		t.Fatalf("retired %d cells of %d", rep.CellsRetired, st.Jobs)
	}

	code, res := do(t, http.MethodGet, ts.URL+"/v1/campaigns/"+st.ID+"/results", "")
	if code != http.StatusOK || !bytes.Contains(res, []byte(`"key"`)) {
		t.Fatalf("adaptive results: %d %s", code, res)
	}
}

// submitV1AndWait mirrors submitAndWait over the versioned paths.
func submitV1AndWait(t *testing.T, ts *httptest.Server, body string) runStatus {
	t.Helper()
	code, data := do(t, http.MethodPost, ts.URL+"/v1/campaigns", body)
	if code != http.StatusAccepted {
		t.Fatalf("v1 submit: %d %s", code, data)
	}
	var st runStatus
	if err := json.Unmarshal(data, &st); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Minute)
	for {
		code, data = do(t, http.MethodGet, ts.URL+"/v1/campaigns/"+st.ID, "")
		if code != http.StatusOK {
			t.Fatalf("v1 status: %d %s", code, data)
		}
		if err := json.Unmarshal(data, &st); err != nil {
			t.Fatal(err)
		}
		switch st.Status {
		case "done", "failed", "canceled":
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("campaign %s stuck in %s", st.ID, st.Status)
		}
		time.Sleep(20 * time.Millisecond)
	}
}
