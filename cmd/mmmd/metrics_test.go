package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/campaign"
	"repro/internal/obs"
)

// TestMetricsEndpoint scrapes GET /metrics after a completed campaign
// and validates the page with the repository's strict exposition
// parser: required families present, the ISSUE's 12-series floor met.
func TestMetricsEndpoint(t *testing.T) {
	ts := testService(t)
	if st := submitAndWait(t, ts, micro); st.Status != "done" {
		t.Fatalf("campaign: %+v", st)
	}

	code, data := do(t, http.MethodGet, ts.URL+"/metrics", "")
	if code != http.StatusOK {
		t.Fatalf("metrics: %d %s", code, data)
	}
	fams, err := obs.ParseExposition(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("exposition invalid: %v\n%s", err, data)
	}
	for _, want := range []string{
		"mmmd_uptime_seconds",
		"mmmd_campaign_runs",
		"mmmd_runs_evicted_total",
		"mmmd_campaign_cells_done",
		"mmmd_campaign_cells_total",
		"mmmd_cache_hits_total",
		"mmmd_cache_misses_total",
		"mmmd_cache_stores_total",
		"mmmd_job_seconds",
		"mmmd_http_requests_total",
		"mmmd_http_request_seconds",
	} {
		if f := fams[want]; f == nil || len(f.Series) == 0 {
			t.Errorf("family %s missing from /metrics\n%s", want, data)
		}
	}
	if n := obs.TotalSeries(fams); n < 12 {
		t.Fatalf("only %d series, ISSUE requires >= 12\n%s", n, data)
	}
	// Runs-by-status always emits the full vocabulary, with this run
	// counted under done.
	if !bytes.Contains(data, []byte(`mmmd_campaign_runs{status="done"} 1`)) {
		t.Errorf("done run not counted:\n%s", data)
	}
	for _, st := range runStatuses {
		if !bytes.Contains(data, []byte(`mmmd_campaign_runs{status="`+st+`"}`)) {
			t.Errorf("status %q missing from runs-by-status", st)
		}
	}
	// The campaign's local jobs fed the latency histogram.
	if !bytes.Contains(data, []byte("mmmd_job_seconds_count")) {
		t.Errorf("job latency histogram missing:\n%s", data)
	}
	// Content type advertises the exposition version.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("content type %q lacks exposition version", ct)
	}
}

// TestAccessLogCountsRequests: the middleware counts requests by
// route pattern (bounded cardinality — per-run ids collapse to {id}).
func TestAccessLogCountsRequests(t *testing.T) {
	ts := testService(t)
	if st := submitAndWait(t, ts, micro); st.Status != "done" {
		t.Fatalf("campaign: %+v", st)
	}
	do(t, http.MethodGet, ts.URL+"/campaigns/c1/results", "")
	do(t, http.MethodGet, ts.URL+"/campaigns/c1/events?after=999999", "")
	_, data := do(t, http.MethodGet, ts.URL+"/metrics", "")
	for _, want := range []string{
		`path="/campaigns/{id}"`,
		`path="/campaigns/{id}/results"`,
		`path="/campaigns/{id}/events"`,
		`method="POST"`,
	} {
		if !bytes.Contains(data, []byte(want)) {
			t.Errorf("request counter missing %s:\n%s", want, data)
		}
	}
	if bytes.Contains(data, []byte(`path="/campaigns/c1"`)) {
		t.Error("raw run id leaked into the path label (unbounded cardinality)")
	}
}

func TestRouteLabel(t *testing.T) {
	cases := []struct {
		path, pattern, id string
	}{
		{"/campaigns/c12", "/campaigns/{id}", "c12"},
		{"/campaigns/c3/results", "/campaigns/{id}/results", "c3"},
		{"/campaigns/c7/events", "/campaigns/{id}/events", "c7"},
		{"/campaigns/c3/cancel", "/campaigns/{id}/cancel", "c3"},
		{"/campaigns", "/campaigns", ""},
		{"/status", "/status", ""},
		{"/metrics", "/metrics", ""},
	}
	for _, tc := range cases {
		pattern, id := routeLabel(tc.path)
		if pattern != tc.pattern || id != tc.id {
			t.Errorf("routeLabel(%q) = (%q, %q), want (%q, %q)",
				tc.path, pattern, id, tc.pattern, tc.id)
		}
	}
}

// TestPprofGatedBehindDebug: profiling endpoints must be absent by
// default and present with -debug.
func TestPprofGatedBehindDebug(t *testing.T) {
	plain := testService(t)
	if code, _ := do(t, http.MethodGet, plain.URL+"/debug/pprof/", ""); code != http.StatusNotFound {
		t.Fatalf("pprof without -debug: %d, want 404", code)
	}

	srv := newServer(context.Background(), nil, 2, 2)
	srv.debug = true
	ts := httptest.NewServer(srv.handler())
	t.Cleanup(ts.Close)
	code, data := do(t, http.MethodGet, ts.URL+"/debug/pprof/", "")
	if code != http.StatusOK || !bytes.Contains(data, []byte("goroutine")) {
		t.Fatalf("pprof with -debug: %d %.200s", code, data)
	}
}

// TestServiceStatusIncludesRuns: GET /status now carries per-run
// progress snapshots in submission order.
func TestServiceStatusIncludesRuns(t *testing.T) {
	ts := testService(t)
	first := submitAndWait(t, ts, micro)
	second := submitAndWait(t, ts, micro)
	_, data := do(t, http.MethodGet, ts.URL+"/status", "")
	var st struct {
		Runs []runStatus `json:"runs"`
	}
	if err := json.Unmarshal(data, &st); err != nil {
		t.Fatalf("status body: %v\n%s", err, data)
	}
	if len(st.Runs) != 2 || st.Runs[0].ID != first.ID || st.Runs[1].ID != second.ID {
		t.Fatalf("runs array wrong: %s", data)
	}
	if st.Runs[0].Done != st.Runs[0].Jobs || st.Runs[0].Status != "done" {
		t.Fatalf("run progress wrong: %+v", st.Runs[0])
	}
}

// TestWorkerRegistryExposition: the -worker mode registry exposes the
// worker's pull counters and parses as valid text exposition.
func TestWorkerRegistryExposition(t *testing.T) {
	w := campaign.NewWorker(campaign.WorkerOptions{Name: "wx", Capacity: 3})
	t.Cleanup(w.Stop)
	reg, jobSeconds, traces := workerRegistry(w, time.Now())
	jobSeconds.Observe(0.25)
	traces.add(100, 7)

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	fams, err := obs.ParseExposition(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("worker exposition invalid: %v\n%s", err, buf.String())
	}
	for _, want := range []string{
		"mmmd_uptime_seconds",
		"mmmd_worker_capacity",
		"mmmd_worker_attachments",
		"mmmd_worker_attach_total",
		"mmmd_worker_jobs_done_total",
		"mmmd_worker_jobs_failed_total",
		"mmmd_worker_leases_lost_total",
		"mmmd_job_seconds",
		"mmmd_trace_events_total",
		"mmmd_trace_events_dropped_total",
	} {
		if f := fams[want]; f == nil || len(f.Series) == 0 {
			t.Errorf("worker family %s missing\n%s", want, buf.String())
		}
	}
	if !strings.Contains(buf.String(), "mmmd_worker_capacity 3") {
		t.Errorf("capacity gauge wrong:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "mmmd_job_seconds_count 1") {
		t.Errorf("job histogram not fed:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "mmmd_trace_events_dropped_total 7") {
		t.Errorf("trace drop counter not fed:\n%s", buf.String())
	}
}
