// Observability wiring for mmmd: the Prometheus-text /metrics
// endpoint (coordinator and -worker mode), the HTTP access-log
// middleware, and the opt-in pprof mount. All of it is service-level —
// nothing here touches simulation state, so scraping a busy mmmd
// cannot perturb any campaign result.

package main

import (
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/api"
	"repro/internal/campaign"
	"repro/internal/obs"
)

// runStatuses is the fixed status vocabulary; the runs-by-status
// collector always emits every one so dashboards see explicit zeros.
var runStatuses = []string{"queued", "running", "done", "failed", "canceled"}

// initMetrics builds the coordinator's registry: fleet instruments,
// the local job-latency histogram, and collectors over the server's
// run table and cache counters.
func (s *server) initMetrics() {
	r := obs.NewRegistry()
	s.reg = r
	s.fleetObs = campaign.NewFleetObs(r)
	s.jobSeconds = r.Histogram("mmmd_job_seconds",
		"Wall time of locally simulated campaign jobs (cache hits excluded).", nil)
	r.RegisterCollector(func(emit func(obs.Sample)) {
		emit(obs.Sample{Name: "mmmd_uptime_seconds",
			Help: "Seconds since the service started.", Type: "gauge",
			Value: time.Since(s.started).Seconds()})

		s.mu.Lock()
		byStatus := make(map[string]int, len(runStatuses))
		type cell struct {
			id, name    string
			done, total int
		}
		cells := make([]cell, 0, len(s.runs))
		for _, r := range s.runs {
			r.mu.Lock()
			byStatus[r.status]++
			cells = append(cells, cell{r.id, r.name, r.done, r.total})
			r.mu.Unlock()
		}
		evicted := s.evicted
		s.mu.Unlock()

		for _, st := range runStatuses {
			emit(obs.Sample{Name: "mmmd_campaign_runs",
				Help: "Campaign runs by state.", Type: "gauge",
				Labels: []string{"status", st}, Value: float64(byStatus[st])})
		}
		emit(obs.Sample{Name: "mmmd_runs_evicted_total",
			Help: "Completed runs dropped by the retention cap.", Type: "counter",
			Value: float64(evicted)})
		for _, c := range cells {
			labels := []string{"id", c.id, "name", c.name}
			emit(obs.Sample{Name: "mmmd_campaign_cells_done",
				Help: "Completed cells per retained campaign run.", Type: "gauge",
				Labels: labels, Value: float64(c.done)})
			emit(obs.Sample{Name: "mmmd_campaign_cells_total",
				Help: "Total cells per retained campaign run.", Type: "gauge",
				Labels: labels, Value: float64(c.total)})
		}
		if s.counting != nil {
			hits, misses, puts := s.counting.Stats()
			emit(obs.Sample{Name: "mmmd_cache_hits_total",
				Help: "Result-cache hits across all campaigns.", Type: "counter",
				Value: float64(hits)})
			emit(obs.Sample{Name: "mmmd_cache_misses_total",
				Help: "Result-cache misses across all campaigns.", Type: "counter",
				Value: float64(misses)})
			emit(obs.Sample{Name: "mmmd_cache_stores_total",
				Help: "Result-cache stores across all campaigns.", Type: "counter",
				Value: float64(puts)})
		}
		emit(obs.Sample{Name: "mmmd_journal_bytes",
			Help: "On-disk bytes across retained run journals.", Type: "gauge",
			Value: float64(journalBytes(s.journalDir))})
		emit(obs.Sample{Name: "mmmd_trace_events_total",
			Help: "Flight-recorder events captured by traced local jobs.", Type: "counter",
			Value: float64(s.traceEvents.Load())})
		emit(obs.Sample{Name: "mmmd_trace_events_dropped_total",
			Help: "Flight-recorder events dropped by the ring buffer (traced local jobs).", Type: "counter",
			Value: float64(s.traceDropped.Load())})
	})
}

// journalBytes sums the run-journal files on disk; 0 when journaling
// is memory-only. Scrape-time stat of at most retain+live files — far
// off any hot path.
func journalBytes(dir string) int64 {
	if dir == "" {
		return 0
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0
	}
	var total int64
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".journal.jsonl") {
			continue
		}
		if info, err := e.Info(); err == nil {
			total += info.Size()
		}
	}
	return total
}

// traceCounters accumulates flight-recorder volume across traced
// jobs, for the worker-mode /metrics exposition.
type traceCounters struct {
	events, dropped atomic.Uint64
}

func (t *traceCounters) add(total, dropped uint64) {
	if t == nil {
		return
	}
	t.events.Add(total)
	t.dropped.Add(dropped)
}

// workerRegistry builds the -worker mode registry: the worker's pull
// counters plus the shared job-latency histogram fed via OnJobTime and
// the flight-recorder volume counters fed via OnTrace.
func workerRegistry(w *campaign.Worker, started time.Time) (*obs.Registry, *obs.Histogram, *traceCounters) {
	r := obs.NewRegistry()
	jobSeconds := r.Histogram("mmmd_job_seconds",
		"Wall time of leased jobs this worker simulated (local cache hits excluded).", nil)
	tc := &traceCounters{}
	r.RegisterCollector(func(emit func(obs.Sample)) {
		st := w.Stats()
		emit(obs.Sample{Name: "mmmd_uptime_seconds",
			Help: "Seconds since the worker started.", Type: "gauge",
			Value: time.Since(started).Seconds()})
		emit(obs.Sample{Name: "mmmd_worker_capacity",
			Help: "Concurrent lease slots.", Type: "gauge",
			Value: float64(st.Capacity)})
		emit(obs.Sample{Name: "mmmd_worker_attachments",
			Help: "Live coordinator attachments.", Type: "gauge",
			Value: float64(st.Attachments)})
		emit(obs.Sample{Name: "mmmd_worker_attach_total",
			Help: "Attach invitations accepted.", Type: "counter",
			Value: float64(st.AttachTotal)})
		emit(obs.Sample{Name: "mmmd_worker_jobs_done_total",
			Help: "Leased jobs completed successfully.", Type: "counter",
			Value: float64(st.JobsDone)})
		emit(obs.Sample{Name: "mmmd_worker_jobs_failed_total",
			Help: "Leased jobs that errored.", Type: "counter",
			Value: float64(st.JobsFailed)})
		emit(obs.Sample{Name: "mmmd_worker_leases_lost_total",
			Help: "Leases revoked or expired under this worker.", Type: "counter",
			Value: float64(st.LeasesLost)})
		emit(obs.Sample{Name: "mmmd_trace_events_total",
			Help: "Flight-recorder events captured by traced leased jobs.", Type: "counter",
			Value: float64(tc.events.Load())})
		emit(obs.Sample{Name: "mmmd_trace_events_dropped_total",
			Help: "Flight-recorder events dropped by the ring buffer (traced leased jobs).", Type: "counter",
			Value: float64(tc.dropped.Load())})
	})
	return r, jobSeconds, tc
}

// metricsHandler serves a registry as Prometheus text exposition.
func metricsHandler(reg *obs.Registry) http.HandlerFunc {
	return func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	}
}

// mountPprof exposes net/http/pprof on the given mux. Only called
// behind -debug: profiling endpoints can stall a loaded service and
// leak internals, so they are opt-in per process.
func mountPprof(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// statusWriter captures the response code for the access log.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// Flush forwards to the wrapped writer so streaming responses (the
// SSE events endpoint) flush through the access-log middleware —
// without this, the http.Flusher assertion in the SSE handler would
// see only the wrapper and every event would sit in the buffer until
// the run ended.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// routeLabel collapses a request path onto its route pattern (bounded
// label cardinality) and extracts the campaign run id when the path
// carries one. Versioned and legacy spellings keep their own labels —
// the /v1 prefix stays in the pattern — so dashboards can watch
// deprecated-path traffic drain.
func routeLabel(path string) (pattern, runID string) {
	parts := strings.Split(strings.Trim(path, "/"), "/")
	prefix := ""
	if len(parts) >= 1 && parts[0] == strings.Trim(api.PathPrefix, "/") {
		prefix = api.PathPrefix
		parts = parts[1:]
	}
	if len(parts) >= 2 && parts[0] == "campaigns" && parts[1] != "" {
		runID = parts[1]
		if len(parts) == 2 {
			return prefix + "/campaigns/{id}", runID
		}
		return prefix + "/campaigns/{id}/" + strings.Join(parts[2:], "/"), runID
	}
	return path, ""
}

// accessLog wraps a handler with the service's one logging middleware:
// every request is logged (method, path, status, latency, run id when
// present) and counted into the registry.
func accessLog(next http.Handler, reg *obs.Registry) http.Handler {
	seconds := reg.Histogram("mmmd_http_request_seconds",
		"HTTP request latency.", nil)
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		next.ServeHTTP(sw, req)
		elapsed := time.Since(start)
		pattern, runID := routeLabel(req.URL.Path)
		reg.Counter("mmmd_http_requests_total", "HTTP requests by route and status.",
			"method", req.Method, "path", pattern, "code", strconv.Itoa(sw.code)).Inc()
		seconds.Observe(elapsed.Seconds())
		if runID != "" {
			log.Printf("mmmd: http %s %s -> %d in %s run=%s",
				req.Method, req.URL.Path, sw.code, elapsed.Round(time.Microsecond), runID)
		} else {
			log.Printf("mmmd: http %s %s -> %d in %s",
				req.Method, req.URL.Path, sw.code, elapsed.Round(time.Microsecond))
		}
	})
}
