// Server-Sent Events streaming of campaign run journals:
// GET /campaigns/{id}/events replays the journal history and then
// follows the live stream until the run reaches a terminal state.
// Each journal event is one SSE frame — `id:` carries the journal
// sequence number, so a dropped client reconnects with Last-Event-ID
// (or ?after=N) and resumes exactly where it left off; `event:` is the
// journal event type and `data:` its JSON record. Merged events arrive
// in expansion order, so a client accumulates the same deterministic
// row prefix a local run would produce.

package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"repro/internal/campaign"
)

// sseKeepalive is how often an idle stream emits a comment frame so
// proxies and clients can distinguish "no events" from a dead peer.
const sseKeepalive = 15 * time.Second

func (s *server) handleEvents(w http.ResponseWriter, req *http.Request) {
	r := s.lookup(w, req)
	if r == nil {
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		httpError(w, http.StatusInternalServerError, "response writer cannot stream")
		return
	}
	after, err := resumePoint(req)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	keepalive := time.NewTicker(sseKeepalive)
	defer keepalive.Stop()
	for {
		evs, wake, closed := r.jnl.EventsSince(after)
		for i := range evs {
			if err := writeSSE(w, &evs[i]); err != nil {
				return // client went away
			}
			after = evs[i].Seq
		}
		if len(evs) > 0 {
			flusher.Flush()
		}
		if closed {
			// Terminal: everything journaled has been delivered.
			fmt.Fprintf(w, "event: end\ndata: {\"run\":%q}\n\n", r.id)
			flusher.Flush()
			return
		}
		select {
		case <-req.Context().Done():
			return
		case <-wake:
		case <-keepalive.C:
			fmt.Fprint(w, ": keepalive\n\n")
			flusher.Flush()
		}
	}
}

// writeSSE renders one journal event as an SSE frame.
func writeSSE(w http.ResponseWriter, ev *campaign.Event) error {
	data, err := json.Marshal(ev)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Type, data)
	return err
}

// resumePoint extracts the client's resume sequence: the standard
// Last-Event-ID header (set by browsers on reconnect) or an explicit
// ?after=N query. Zero streams from the beginning.
func resumePoint(req *http.Request) (int64, error) {
	raw := req.Header.Get("Last-Event-ID")
	if q := req.URL.Query().Get("after"); q != "" {
		raw = q
	}
	if raw == "" {
		return 0, nil
	}
	n, err := strconv.ParseInt(raw, 10, 64)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("bad resume id %q", raw)
	}
	return n, nil
}
