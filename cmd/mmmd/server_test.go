package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/campaign"
	"repro/internal/mode"
)

// micro is a submit body small enough for tests: one workload, one
// seed, tiny windows.
const micro = `{"name":"table2","scale":"quick",` +
	`"warmup":30000,"measure":60000,"timeslice":20000,` +
	`"workloads":["apache"],"seeds":[11]}`

func testService(t *testing.T) *httptest.Server {
	t.Helper()
	cache, err := campaign.NewDiskCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv := newServer(context.Background(), cache, 2, 2)
	ts := httptest.NewServer(srv.handler())
	t.Cleanup(ts.Close)
	return ts
}

func do(t *testing.T, method, url, body string) (int, []byte) {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data
}

// submitAndWait submits a campaign and polls until it reaches a
// terminal state, returning the final status.
func submitAndWait(t *testing.T, ts *httptest.Server, body string) runStatus {
	t.Helper()
	code, data := do(t, http.MethodPost, ts.URL+"/campaigns", body)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", code, data)
	}
	var st runStatus
	if err := json.Unmarshal(data, &st); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Minute)
	for {
		code, data = do(t, http.MethodGet, ts.URL+"/campaigns/"+st.ID, "")
		if code != http.StatusOK {
			t.Fatalf("status: %d %s", code, data)
		}
		if err := json.Unmarshal(data, &st); err != nil {
			t.Fatal(err)
		}
		switch st.Status {
		case "done", "failed", "canceled":
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("campaign %s stuck in %s", st.ID, st.Status)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestHealthAndCatalog(t *testing.T) {
	ts := testService(t)
	if code, _ := do(t, http.MethodGet, ts.URL+"/healthz", ""); code != http.StatusOK {
		t.Fatalf("healthz: %d", code)
	}
	code, data := do(t, http.MethodGet, ts.URL+"/catalog", "")
	if code != http.StatusOK || !bytes.Contains(data, []byte("figure5")) {
		t.Fatalf("catalog: %d %s", code, data)
	}
}

func TestSubmitRejectsBadRequests(t *testing.T) {
	ts := testService(t)
	for _, body := range []string{
		"{not json",
		`{"name":"nope"}`,
		`{"name":"figure5","scale":"galactic"}`,
		`{"name":"figure5","workloads":["nope"]}`,
	} {
		if code, _ := do(t, http.MethodPost, ts.URL+"/campaigns", body); code != http.StatusBadRequest {
			t.Errorf("submit %q: code %d, want 400", body, code)
		}
	}
	if code, _ := do(t, http.MethodGet, ts.URL+"/campaigns/c99", ""); code != http.StatusNotFound {
		t.Errorf("unknown id: %d, want 404", code)
	}
}

func TestSubmitRunFetchAndCachedResubmit(t *testing.T) {
	ts := testService(t)

	st := submitAndWait(t, ts, micro)
	if st.Status != "done" {
		t.Fatalf("first run: %+v", st)
	}
	if st.CacheHit != 0 || st.Done != st.Jobs {
		t.Fatalf("first run should be all misses: %+v", st)
	}

	code, res1 := do(t, http.MethodGet, ts.URL+"/campaigns/"+st.ID+"/results", "")
	if code != http.StatusOK || !bytes.Contains(res1, []byte(`"key"`)) {
		t.Fatalf("results: %d %s", code, res1)
	}
	code, csv := do(t, http.MethodGet, ts.URL+"/campaigns/"+st.ID+"/results?format=csv", "")
	if code != http.StatusOK || !bytes.HasPrefix(csv, []byte("key,metric,")) {
		t.Fatalf("csv results: %d %s", code, csv)
	}

	// Re-submitting the same campaign must complete from cache alone
	// and emit byte-identical rows.
	st2 := submitAndWait(t, ts, micro)
	if st2.Status != "done" || st2.CacheHit != st2.Jobs {
		t.Fatalf("resubmit not fully cached: %+v", st2)
	}
	_, res2 := do(t, http.MethodGet, ts.URL+"/campaigns/"+st2.ID+"/results", "")
	if !bytes.Equal(res1, res2) {
		t.Fatalf("cached rerun rows differ:\n%s\nvs\n%s", res1, res2)
	}

	// The listing shows both campaigns in submission order.
	code, data := do(t, http.MethodGet, ts.URL+"/campaigns", "")
	if code != http.StatusOK {
		t.Fatalf("list: %d", code)
	}
	var list struct {
		Campaigns []runStatus `json:"campaigns"`
	}
	if err := json.Unmarshal(data, &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Campaigns) != 2 || list.Campaigns[0].ID != st.ID || list.Campaigns[1].ID != st2.ID {
		t.Fatalf("list: %s", data)
	}
}

func TestResultsBeforeDoneConflicts(t *testing.T) {
	ts := testService(t)
	// Submit a long campaign and immediately ask for results.
	code, data := do(t, http.MethodPost, ts.URL+"/campaigns",
		`{"name":"figure6","scale":"quick","workloads":["apache"],"seeds":[11]}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", code, data)
	}
	var st runStatus
	if err := json.Unmarshal(data, &st); err != nil {
		t.Fatal(err)
	}
	if code, _ = do(t, http.MethodGet, ts.URL+"/campaigns/"+st.ID+"/results", ""); code != http.StatusConflict {
		t.Fatalf("results while running: %d, want 409", code)
	}
	// Cancel it and confirm the terminal state is visible.
	if code, _ = do(t, http.MethodPost, ts.URL+"/campaigns/"+st.ID+"/cancel", ""); code != http.StatusOK {
		t.Fatalf("cancel: %d", code)
	}
	deadline := time.Now().Add(time.Minute)
	for {
		_, data = do(t, http.MethodGet, ts.URL+"/campaigns/"+st.ID, "")
		if err := json.Unmarshal(data, &st); err != nil {
			t.Fatal(err)
		}
		if st.Status == "canceled" || st.Status == "done" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("cancel never landed: %+v", st)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestServiceStatusReportsCacheCounters(t *testing.T) {
	ts := testService(t)
	// Cold run fills the cache; warm rerun hits it.
	if st := submitAndWait(t, ts, micro); st.Status != "done" {
		t.Fatalf("first run: %+v", st)
	}
	if st := submitAndWait(t, ts, micro); st.Status != "done" {
		t.Fatalf("second run: %+v", st)
	}
	code, data := do(t, http.MethodGet, ts.URL+"/status", "")
	if code != http.StatusOK {
		t.Fatalf("status: %d %s", code, data)
	}
	var st struct {
		Status    string `json:"status"`
		UptimeMS  int64  `json:"uptime_ms"`
		Campaigns struct {
			Total    int            `json:"total"`
			ByStatus map[string]int `json:"by_status"`
		} `json:"campaigns"`
		Cache *struct {
			Hits   uint64 `json:"hits"`
			Misses uint64 `json:"misses"`
			Stores uint64 `json:"stores"`
		} `json:"cache"`
	}
	if err := json.Unmarshal(data, &st); err != nil {
		t.Fatalf("status body: %v\n%s", err, data)
	}
	if st.Status != "ok" || st.Campaigns.Total != 2 || st.Campaigns.ByStatus["done"] != 2 {
		t.Fatalf("service status wrong: %s", data)
	}
	if st.Cache == nil || st.Cache.Misses == 0 || st.Cache.Hits == 0 || st.Cache.Stores != st.Cache.Misses {
		t.Fatalf("cache counters wrong: %s", data)
	}
}

// TestFleetSubmitMatchesLocal: a campaign submitted to a fleet-backed
// service shards across its workers, and a forced-local resubmission
// resumes entirely from the shared cache with byte-identical rows —
// the mixed local/remote guarantee end to end through the HTTP API.
func TestFleetSubmitMatchesLocal(t *testing.T) {
	var workers []string
	for _, name := range []string{"w1", "w2"} {
		w := campaign.NewWorker(campaign.WorkerOptions{
			Name: name, Capacity: 2, Poll: 5 * time.Millisecond,
		})
		wts := httptest.NewServer(w.Handler())
		t.Cleanup(func() {
			w.Stop()
			wts.Close()
		})
		workers = append(workers, wts.URL)
	}

	cache, err := campaign.NewDiskCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv := newServer(context.Background(), cache, 2, 2)
	srv.fleet = workers
	ts := httptest.NewServer(srv.handler())
	t.Cleanup(ts.Close)

	st := submitAndWait(t, ts, micro)
	if st.Status != "done" || st.Workers != 2 {
		t.Fatalf("fleet run: %+v", st)
	}
	if st.CacheHit != 0 || st.Done != st.Jobs {
		t.Fatalf("fleet cold run should be all misses: %+v", st)
	}
	code, res1 := do(t, http.MethodGet, ts.URL+"/campaigns/"+st.ID+"/results", "")
	if code != http.StatusOK {
		t.Fatalf("results: %d", code)
	}

	// Forced-local resubmission: same jobs, so the fleet's results
	// serve it fully from cache, byte for byte.
	st2 := submitAndWait(t, ts, `{"local":true,`+micro[1:])
	if st2.Status != "done" || st2.Workers != 0 {
		t.Fatalf("local resubmit: %+v", st2)
	}
	if st2.CacheHit != st2.Jobs {
		t.Fatalf("local resubmit should be fully cached: %+v", st2)
	}
	_, res2 := do(t, http.MethodGet, ts.URL+"/campaigns/"+st2.ID+"/results", "")
	if !bytes.Equal(res1, res2) {
		t.Fatalf("fleet and local rows differ:\n%s\nvs\n%s", res1, res2)
	}
}

// TestFinishClassifiesWrappedCancellation: a cancellation that arrives
// wrapped (fmt.Errorf %w from a future engine change, or context.Cause)
// must land the run in "canceled", not "failed".
func TestFinishClassifiesWrappedCancellation(t *testing.T) {
	for _, err := range []error{
		context.Canceled,
		fmt.Errorf("campaign: worker pool: %w", context.Canceled),
	} {
		r := &run{status: "running"}
		r.finish(nil, nil, err)
		if r.status != "canceled" {
			t.Errorf("finish(%v): status %q, want canceled", err, r.status)
		}
	}
	r := &run{status: "running"}
	r.finish(nil, nil, fmt.Errorf("disk full"))
	if r.status != "failed" {
		t.Errorf("finish(real error): status %q, want failed", r.status)
	}
}

// TestCancelMidCampaign: cancelling a running campaign lands it in
// "canceled" (not "failed") and its partial result set is never
// summarized — the results endpoint keeps refusing with a conflict.
func TestCancelMidCampaign(t *testing.T) {
	ts := testService(t)
	// Default scale: slow enough that the cancel lands mid-run.
	code, data := do(t, http.MethodPost, ts.URL+"/campaigns",
		`{"name":"figure5","workloads":["apache"],"seeds":[11,23,31]}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", code, data)
	}
	var st runStatus
	if err := json.Unmarshal(data, &st); err != nil {
		t.Fatal(err)
	}
	if code, _ = do(t, http.MethodPost, ts.URL+"/campaigns/"+st.ID+"/cancel", ""); code != http.StatusOK {
		t.Fatalf("cancel: %d", code)
	}
	deadline := time.Now().Add(time.Minute)
	for {
		_, data = do(t, http.MethodGet, ts.URL+"/campaigns/"+st.ID, "")
		if err := json.Unmarshal(data, &st); err != nil {
			t.Fatal(err)
		}
		if st.Status != "queued" && st.Status != "running" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("cancel never landed: %+v", st)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if st.Status != "canceled" {
		t.Fatalf("status %q, want canceled (error %q)", st.Status, st.Error)
	}
	if code, _ := do(t, http.MethodGet, ts.URL+"/campaigns/"+st.ID+"/results", ""); code != http.StatusConflict {
		t.Fatalf("results of canceled run: %d, want 409", code)
	}
}

// TestZeroWarmupOverride: an explicit zero warmup must be applied (the
// engine supports zero-warmup campaigns), while zero measure and
// timeslice are rejected.
func TestZeroWarmupOverride(t *testing.T) {
	u := func(v uint64) *uint64 { return &v }
	sc, err := scaleOf(submitRequest{Scale: "quick", Warmup: u(0)})
	if err != nil {
		t.Fatal(err)
	}
	if sc.Warmup != 0 {
		t.Fatalf("explicit zero warmup ignored: %+v", sc)
	}
	if sc.Measure != campaign.QuickScale().Measure {
		t.Fatalf("unset measure should keep the preset: %+v", sc)
	}
	if _, err := scaleOf(submitRequest{Measure: u(0)}); err == nil {
		t.Fatal("zero measure accepted")
	}
	if _, err := scaleOf(submitRequest{Timeslice: u(0)}); err == nil {
		t.Fatal("zero timeslice accepted")
	}

	// End to end: a zero-warmup submission completes.
	ts := testService(t)
	st := submitAndWait(t, ts, `{"name":"table2","scale":"quick",`+
		`"warmup":0,"measure":60000,"timeslice":20000,`+
		`"workloads":["apache"],"seeds":[11]}`)
	if st.Status != "done" {
		t.Fatalf("zero-warmup campaign: %+v", st)
	}
}

// TestRetentionCapEvictsOldestCompleted: a long-lived service must not
// grow its runs map without bound; completed runs beyond the retention
// cap are evicted oldest-first and counted in GET /status.
func TestRetentionCapEvictsOldestCompleted(t *testing.T) {
	cache, err := campaign.NewDiskCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv := newServer(context.Background(), cache, 2, 2)
	srv.retain = 1
	ts := httptest.NewServer(srv.handler())
	t.Cleanup(ts.Close)

	var last runStatus
	for i := 0; i < 3; i++ {
		last = submitAndWait(t, ts, micro)
		if last.Status != "done" {
			t.Fatalf("run %d: %+v", i, last)
		}
	}

	code, data := do(t, http.MethodGet, ts.URL+"/campaigns", "")
	if code != http.StatusOK {
		t.Fatalf("list: %d", code)
	}
	var list struct {
		Campaigns []runStatus `json:"campaigns"`
	}
	if err := json.Unmarshal(data, &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Campaigns) != 1 || list.Campaigns[0].ID != last.ID {
		t.Fatalf("retention kept wrong runs: %s", data)
	}

	_, data = do(t, http.MethodGet, ts.URL+"/status", "")
	var st struct {
		Campaigns struct {
			Total   int    `json:"total"`
			Evicted uint64 `json:"evicted"`
		} `json:"campaigns"`
	}
	if err := json.Unmarshal(data, &st); err != nil {
		t.Fatalf("status body: %v\n%s", err, data)
	}
	if st.Campaigns.Total != 1 || st.Campaigns.Evicted != 2 {
		t.Fatalf("status after eviction: %s", data)
	}
}

func TestCatalogListsAxes(t *testing.T) {
	ts := testService(t)
	code, data := do(t, http.MethodGet, ts.URL+"/catalog", "")
	if code != http.StatusOK {
		t.Fatalf("catalog: %d", code)
	}
	var cat struct {
		Names     []string        `json:"names"`
		Campaigns []campaign.Axes `json:"campaigns"`
	}
	if err := json.Unmarshal(data, &cat); err != nil {
		t.Fatalf("catalog body: %v\n%s", err, data)
	}
	if len(cat.Names) == 0 || len(cat.Campaigns) != len(cat.Names) {
		t.Fatalf("catalog incomplete: %s", data)
	}
	found := false
	for _, ax := range cat.Campaigns {
		if ax.Name == "relia" {
			found = true
			if !ax.Reliability || len(ax.Kinds) == 0 || len(ax.Variants) == 0 || ax.Jobs == 0 {
				t.Fatalf("relia axes incomplete: %+v", ax)
			}
		}
	}
	if !found {
		t.Fatal("relia campaign missing from catalog")
	}
}

// TestReliaCampaignViaService: the reliability sweep completes through
// the HTTP front end and its results carry coverage rows with Wilson
// bounds and the MTTF/FIT rollup.
func TestReliaCampaignViaService(t *testing.T) {
	ts := testService(t)
	st := submitAndWait(t, ts, `{"name":"relia","scale":"quick","workloads":["apache"],"seeds":[11]}`)
	if st.Status != "done" {
		t.Fatalf("relia campaign: %+v", st)
	}
	code, res := do(t, http.MethodGet, ts.URL+"/campaigns/"+st.ID+"/results", "")
	if code != http.StatusOK {
		t.Fatalf("results: %d", code)
	}
	for _, want := range []string{"relia:coverage:", "relia:fit_sdc", "relia:mttf_h"} {
		if !bytes.Contains(res, []byte(want)) {
			t.Fatalf("results missing %q:\n%.2000s", want, res)
		}
	}
	// Byte-identical on a cache-warm resubmission.
	st2 := submitAndWait(t, ts, `{"name":"relia","scale":"quick","workloads":["apache"],"seeds":[11]}`)
	if st2.Status != "done" || st2.CacheHit != st2.Jobs {
		t.Fatalf("resubmit not fully cached: %+v", st2)
	}
	_, res2 := do(t, http.MethodGet, ts.URL+"/campaigns/"+st2.ID+"/results", "")
	if !bytes.Equal(res, res2) {
		t.Fatal("relia results not byte-identical across cache-warm reruns")
	}
}

// TestCatalogExposesPolicyAxis: GET /catalog lists the registered mode
// policies and the policy campaign's swept axis.
func TestCatalogExposesPolicyAxis(t *testing.T) {
	ts := testService(t)
	code, data := do(t, http.MethodGet, ts.URL+"/catalog", "")
	if code != http.StatusOK {
		t.Fatalf("catalog: %d", code)
	}
	var doc struct {
		Policies  []string        `json:"policies"`
		Campaigns []campaign.Axes `json:"campaigns"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("catalog body: %v\n%s", err, data)
	}
	for _, want := range mode.Names() {
		found := false
		for _, p := range doc.Policies {
			found = found || p == want
		}
		if !found {
			t.Fatalf("catalog policies %v missing %q", doc.Policies, want)
		}
	}
	for _, ax := range doc.Campaigns {
		if ax.Name != "policy" {
			continue
		}
		if len(ax.Policies) < 4 { // static + three dynamic policies
			t.Fatalf("policy campaign axes incomplete: %+v", ax)
		}
		return
	}
	t.Fatal("policy campaign missing from catalog")
}

// TestSubmitRejectsUnknownPolicy: a submission naming an unregistered
// policy answers 400 and the error lists the valid names.
func TestSubmitRejectsUnknownPolicy(t *testing.T) {
	ts := testService(t)
	code, data := do(t, http.MethodPost, ts.URL+"/campaigns",
		`{"name":"table2","policies":["warp-drive"]}`)
	if code != http.StatusBadRequest {
		t.Fatalf("unknown policy: code %d, want 400 (%s)", code, data)
	}
	for _, want := range mode.Names() {
		if !bytes.Contains(data, []byte(want)) {
			t.Fatalf("error should list valid policy %q: %s", want, data)
		}
	}
}

// TestSubmitWithPolicyAxis: the policies override multiplies the
// campaign's cells and the dynamic cells land under pol= keys.
func TestSubmitWithPolicyAxis(t *testing.T) {
	ts := testService(t)
	body := `{"name":"table2","scale":"quick",` +
		`"warmup":30000,"measure":60000,"timeslice":20000,` +
		`"workloads":["apache"],"seeds":[11],` +
		`"policies":["static","duty-cycle"]}`
	st := submitAndWait(t, ts, body)
	if st.Status != "done" {
		t.Fatalf("policy-axis campaign: %+v", st)
	}
	if st.Jobs != 2 {
		t.Fatalf("expected 2 jobs (static + duty-cycle), got %d", st.Jobs)
	}
	code, res := do(t, http.MethodGet, ts.URL+"/campaigns/"+st.ID+"/results", "")
	if code != http.StatusOK {
		t.Fatalf("results: %d", code)
	}
	if !bytes.Contains(res, []byte("pol=duty-cycle")) {
		t.Fatalf("dynamic cell missing from rows: %s", res)
	}
}
