// Command mmmlint runs the repository's determinism-invariant
// analyzer suite (internal/lint): detclock, maporder, nilsafe and
// knobcover. It is both a standalone multichecker —
//
//	mmmlint ./...
//	mmmlint -json ./...
//	mmmlint -run detclock,maporder ./internal/core/...
//
// — and a vet tool speaking the go vet protocol:
//
//	go vet -vettool=$(which mmmlint) ./...
//
// Exit status: 0 clean, 1 findings, 2 usage or load error.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/lint"
)

func main() {
	// `go vet -vettool=mmmlint` handshakes with -V=full / -flags and
	// then passes a *.cfg compilation unit; handle that protocol before
	// standalone flag parsing (it never returns on a vet invocation).
	lint.VetToolMain(lint.All())

	var (
		jsonOut = flag.Bool("json", false, "emit findings as a JSON array (file/line/col/analyzer/message)")
		run     = flag.String("run", "", "comma-separated analyzer subset (default: all of detclock,maporder,nilsafe,knobcover)")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: mmmlint [-json] [-run analyzers] [packages]\n\n"+
			"Runs the determinism-invariant analyzer suite over the packages\n"+
			"(default ./...). Also usable as go vet -vettool=$(which mmmlint).\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers, err := lint.ByName(*run)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mmmlint:", err)
		os.Exit(2)
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	pkgs, err := lint.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mmmlint:", err)
		os.Exit(2)
	}
	findings, err := lint.RunAnalyzers(pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mmmlint:", err)
		os.Exit(2)
	}
	if wd, err := os.Getwd(); err == nil {
		lint.Relativize(wd, findings)
	}
	if *jsonOut {
		if err := lint.WriteJSON(os.Stdout, findings); err != nil {
			fmt.Fprintln(os.Stderr, "mmmlint:", err)
			os.Exit(2)
		}
	} else if err := lint.WriteText(os.Stdout, findings); err != nil {
		fmt.Fprintln(os.Stderr, "mmmlint:", err)
		os.Exit(2)
	}
	if len(findings) > 0 {
		os.Exit(1)
	}
}
