// Consolidated server (Figure 2 of the paper): a VMM hosts two guest
// VMs with different service-level agreements. The premium guest needs
// DMR reliability; the economy guest wants raw throughput. This example
// sweeps all six workload models through DMR-base, MMM-IPC and MMM-TP
// and prints per-guest results — a miniature Figure 6.
//
//	go run ./examples/consolidated [-measure N]
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

func main() {
	measure := flag.Uint64("measure", 1_000_000, "measurement cycles per run")
	warmup := flag.Uint64("warmup", 500_000, "warmup cycles per run")
	flag.Parse()

	table := &stats.Table{
		Title: "Consolidated server: per-guest user throughput (normalized to DMR-base)",
		Columns: []string{"workload",
			"rel@IPC", "perf@IPC", "rel@TP", "perf@TP", "total@TP"},
	}

	for _, name := range workload.Names() {
		wl, err := workload.ByName(name)
		if err != nil {
			log.Fatal(err)
		}
		run := func(kind core.Kind) core.Metrics {
			cfg := sim.DefaultConfig()
			cfg.TimesliceCycles = 250_000
			m, err := core.RunSystem(core.Options{
				Cfg: cfg, Kind: kind, Workload: wl, Seed: 11,
			}, sim.Cycle(*warmup), sim.Cycle(*measure))
			if err != nil {
				log.Fatal(err)
			}
			return m
		}
		base := run(core.KindDMRBase)
		ipc := run(core.KindMMMIPC)
		tp := run(core.KindMMMTP)
		norm := func(m core.Metrics, bucket string) string {
			return fmt.Sprintf("%.2f", stats.Ratio(m.Throughput(bucket), base.Throughput(bucket)))
		}
		table.AddRow(name,
			norm(ipc, "reliable"), norm(ipc, "perf"),
			norm(tp, "reliable"), norm(tp, "perf"),
			fmt.Sprintf("%.2f", stats.Ratio(tp.TotalThroughput(), base.TotalThroughput())))
		fmt.Printf("finished %s\n", name)
	}
	fmt.Println()
	fmt.Println(table)
	fmt.Println("Expected shape (paper): perf@TP well above perf@IPC and both above 1.0;")
	fmt.Println("rel columns near 1.0 (the reliable guest keeps its DMR protection).")
}
