// Fault injection: demonstrates the protection story of Section 3.4.
// Hardware faults are injected into a mixed-mode consolidated server:
// TLB bit flips (the class that lets even correct software write
// physical addresses it does not own), execution-result corruption,
// and privileged-register corruption. The run is repeated with the
// Protection Assistance Buffer disabled to show the corruption it
// prevents.
//
//	go run ./examples/faultinjection [-interval 20000]
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	interval := flag.Float64("interval", 20_000, "mean cycles between injected faults")
	flag.Parse()

	wl, err := workload.ByName("oltp")
	if err != nil {
		log.Fatal(err)
	}

	run := func(kind core.Kind, disabled bool, kinds ...fault.Kind) core.Metrics {
		cfg := sim.DefaultConfig()
		cfg.TimesliceCycles = 200_000
		m, err := core.RunSystem(core.Options{
			Cfg:         cfg,
			Kind:        kind,
			Workload:    wl,
			Seed:        11,
			PABDisabled: disabled,
			FaultPlan:   &fault.Plan{MeanInterval: *interval, Kinds: kinds},
		}, 300_000, 1_000_000)
		if err != nil {
			log.Fatal(err)
		}
		return m
	}

	fmt.Println("=== DMR mode: fingerprint detection (Reunion) ===")
	m := run(core.KindReunion, false, fault.ResultFlip)
	fmt.Printf("  injected result flips: %d\n", m.FaultsInjected)
	fmt.Printf("  fingerprint mismatches detected: %d (each squashed and re-executed)\n", m.Mismatches)
	fmt.Printf("  work still completed: %.0f user instructions\n\n", m.TotalThroughput())

	fmt.Println("=== Performance mode with the PAB: TLB faults stopped before corruption ===")
	m = run(core.KindMMMIPC, false, fault.TLBFlip)
	fmt.Printf("  injected TLB flips: %d\n", m.FaultsInjected)
	fmt.Printf("  PAB exceptions (store stopped before the L2): %d\n", m.PABExceptions)
	fmt.Printf("  silent corruptions of reliable memory: %d\n\n", m.WouldCorrupt)

	fmt.Println("=== Same faults with the PAB disabled (ablation) ===")
	m = run(core.KindMMMIPC, true, fault.TLBFlip)
	fmt.Printf("  injected TLB flips: %d\n", m.FaultsInjected)
	fmt.Printf("  PAB exceptions: %d\n", m.PABExceptions)
	fmt.Printf("  SILENT CORRUPTIONS of reliable-only pages: %d  <- what the PAB exists to stop\n\n", m.WouldCorrupt)

	fmt.Println("=== Privileged-register corruption caught on Enter-DMR (single-OS) ===")
	m = run(core.KindSingleOS, false, fault.PrivRegFlip)
	fmt.Printf("  injected privileged-register flips: %d\n", m.FaultsInjected)
	fmt.Printf("  caught by the mute's redundant-copy verification: %d\n", m.VerifyFailures)
}
