// Quickstart: build a Mixed-Mode Multicore, run the consolidated
// server scenario (one reliable guest, one performance guest, as in
// Figure 2 of the paper), and print what mixed-mode operation buys.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	// The target multicore: 16 out-of-order cores, Reunion-style DMR
	// pairs, write-through L1s, private L2s, a shared exclusive L3 and
	// a MOSI directory — the paper's Section 4.1 configuration.
	cfg := sim.DefaultConfig()
	cfg.TimesliceCycles = 250_000 // gang-scheduling timeslice

	// The OLTP workload model: a TPC-C-like database with large shared
	// working sets and regular OS activity.
	wl, err := workload.ByName("oltp")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Mixed-Mode Multicore quickstart: one reliable + one performance guest (oltp)")
	fmt.Println()

	// Compare the consolidated-server baseline (everything in DMR,
	// because one guest needs reliability) against the two mixed-mode
	// systems the paper proposes.
	var baseline core.Metrics
	for _, kind := range []core.Kind{core.KindDMRBase, core.KindMMMIPC, core.KindMMMTP} {
		m, err := core.RunSystem(core.Options{
			Cfg:      cfg,
			Kind:     kind,
			Workload: wl,
			Seed:     11,
		}, 500_000, 1_000_000)
		if err != nil {
			log.Fatal(err)
		}
		if kind == core.KindDMRBase {
			baseline = m
		}
		fmt.Printf("%-8s reliable VM: %7.0f user instrs   perf VM: %7.0f user instrs",
			kind, m.Throughput("reliable"), m.Throughput("perf"))
		if kind != core.KindDMRBase {
			fmt.Printf("   perf speedup %.2fx, total %.2fx",
				m.Throughput("perf")/baseline.Throughput("perf"),
				m.TotalThroughput()/baseline.TotalThroughput())
		}
		if m.LeaveN > 0 {
			fmt.Printf("   (enter-DMR %.1fk cyc, leave-DMR %.1fk cyc)",
				m.EnterAvg/1000, m.LeaveAvg/1000)
		}
		fmt.Println()
	}

	fmt.Println()
	fmt.Println("MMM-IPC idles redundant cores during the performance guest's timeslices;")
	fmt.Println("MMM-TP runs extra VCPUs on them, trading some per-thread IPC for throughput.")
	fmt.Println("The reliable guest keeps full DMR protection throughout.")
}
