// Single-OS mixed mode (Figure 1 of the paper): performance
// applications run unprotected on single cores, but every system call,
// page fault or interrupt appropriates the paired core and enters DMR
// — privileged software always runs reliably. This example runs the
// single-OS system and reports the mode-switching cadence and cost
// (the Section 5.3 analysis).
//
//	go run ./examples/singleos [-workload zeus]
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	wlName := flag.String("workload", "apache", "workload model")
	flag.Parse()

	wl, err := workload.ByName(*wlName)
	if err != nil {
		log.Fatal(err)
	}
	cfg := sim.DefaultConfig()
	m, err := core.RunSystem(core.Options{
		Cfg:      cfg,
		Kind:     core.KindSingleOS,
		Workload: wl,
		Seed:     11,
	}, 500_000, 1_500_000)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Single-OS mixed mode, %s, %d cycles measured\n", wl.Name, m.Cycles)
	fmt.Printf("  per-thread user IPC:      %.4f\n", m.UserIPC("apps"))
	fmt.Printf("  enter-DMR transitions:    %d (avg %.1fk cycles)\n", m.EnterN, m.EnterAvg/1000)
	fmt.Printf("  leave-DMR transitions:    %d (avg %.1fk cycles)\n", m.LeaveN, m.LeaveAvg/1000)
	fmt.Printf("  user cycles per switch:   %.0fk (paper Table 2: 59k-554k)\n", m.UserCycPerSwitch/1000)
	fmt.Printf("  OS cycles per switch:     %.0fk (paper Table 2: 35k-220k)\n", m.OSCycPerSwitch/1000)

	trans := float64(m.EnterN)*m.EnterAvg + float64(m.LeaveN)*m.LeaveAvg
	active := float64(m.Core.Cycles - m.Core.IdleCycles)
	if active > 0 {
		fmt.Printf("  transition overhead:      %.1f%% of active cycles"+
			" (paper: ~8%% apache, <5%% others)\n", 100*trans/active)
	}
	fmt.Printf("  fingerprint checks in OS phases: %d (privileged code always ran in DMR)\n", m.Checks)
}
