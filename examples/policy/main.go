// Mode policies: the paper's point is that reliability modes are a
// *runtime* decision — core pairs couple into DMR and decouple back to
// performance mode while the system runs. This example puts the
// mixed-mode server (MMM-IPC roster) under each registered dynamic
// coupling policy, with and without fault injection, and prints what
// the policy traded: guest IPC against the static schedule, mode
// switches paid, and the protection activity (fingerprint detections,
// machine checks) its DMR windows still caught.
//
//	go run ./examples/policy [-workload apache] [-fault-interval 40000]
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/mode"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

func main() {
	wlName := flag.String("workload", "apache", "workload model")
	faults := flag.Float64("fault-interval", 15_000, "mean cycles between injected faults (0 = none)")
	measure := flag.Uint64("measure", 800_000, "measurement cycles per run")
	flag.Parse()

	wl, err := workload.ByName(*wlName)
	if err != nil {
		log.Fatal(err)
	}
	run := func(policy string) core.Metrics {
		cfg := sim.DefaultConfig()
		cfg.TimesliceCycles = 250_000
		opts := core.Options{
			Cfg: cfg, Kind: core.KindMMMIPC, Policy: policy,
			Workload: wl, Seed: 11,
		}
		if *faults > 0 {
			opts.FaultPlan = &fault.Plan{MeanInterval: *faults}
		}
		m, err := core.RunSystem(opts, 300_000, sim.Cycle(*measure))
		if err != nil {
			log.Fatal(err)
		}
		return m
	}

	base := run("") // the static default every policy is judged against
	table := &stats.Table{
		Title: fmt.Sprintf("Dynamic coupling policies on MMM-IPC (%s, faults every %.0f cycles)", *wlName, *faults),
		Columns: []string{"policy", "rel IPC vs static", "perf IPC vs static",
			"enter", "leave", "FP detections", "machine checks"},
	}
	table.AddRow("static", "1.00", "1.00",
		fmt.Sprint(base.EnterN), fmt.Sprint(base.LeaveN),
		fmt.Sprint(base.Mismatches), fmt.Sprint(base.MachineChecks))
	for _, policy := range mode.Dynamic() {
		m := run(policy)
		table.AddRow(policy,
			fmt.Sprintf("%.2f", stats.Ratio(m.UserIPC("reliable"), base.UserIPC("reliable"))),
			fmt.Sprintf("%.2f", stats.Ratio(m.UserIPC("perf"), base.UserIPC("perf"))),
			fmt.Sprint(m.EnterN), fmt.Sprint(m.LeaveN),
			fmt.Sprint(m.Mismatches), fmt.Sprint(m.MachineChecks))
		fmt.Printf("finished %s\n", policy)
	}
	fmt.Println()
	fmt.Println(table)
	fmt.Println("Expected shape: duty-cycle pays the most switches; fault-escalation")
	fmt.Println("stays near static IPC while converting protection events into DMR")
	fmt.Println("windows (detections rise with the fault rate); utilization decouples")
	fmt.Println("busy pairs, trading reliable-guest redundancy for performance.")
}
