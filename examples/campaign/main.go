// Campaign example: declare a sweep, execute it on the campaign
// engine with an on-disk result cache, and run it a second time to
// show that the rerun resumes entirely from cache.
//
//	go run ./examples/campaign
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"runtime"
	"time"

	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/stats"
)

func main() {
	// A small design sweep: how do Reunion and the mixed-mode IPC
	// system compare on two workloads, with and without the serial PAB
	// lookup?
	spec := campaign.Spec{
		Name:      "example",
		Kinds:     []core.Kind{core.KindReunion, core.KindMMMIPC},
		Workloads: []string{"apache", "oltp"},
		Seeds:     []uint64{11, 23},
		Variants: []campaign.Variant{
			{Name: "parallel"},
			{Name: "serial", Knobs: campaign.Knobs{PABSerial: true}},
		},
	}
	jobs, err := spec.Expand()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("campaign %q expands to %d jobs\n", spec.Name, len(jobs))

	dir, err := os.MkdirTemp("", "campaign-example-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	cache, err := campaign.NewDiskCache(dir)
	if err != nil {
		log.Fatal(err)
	}

	eng := campaign.New(campaign.Options{Parallel: runtime.NumCPU(), Cache: cache})
	sc := campaign.QuickScale()

	// Cold run: everything simulates.
	start := time.Now()
	rs, err := eng.Run(context.Background(), sc, jobs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cold run: %d jobs in %v (%d cache hits)\n",
		len(rs.Results), time.Since(start).Round(time.Millisecond), rs.Hits)

	// Warm run: the same campaign resumes from the cache.
	start = time.Now()
	rs2, err := eng.Run(context.Background(), sc, jobs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("warm run: %d jobs in %v (%d cache hits)\n\n",
		len(rs2.Results), time.Since(start).Round(time.Millisecond), rs2.Hits)

	// Aggregate into rows and emit the per-thread IPC of the
	// performance guest under each variant.
	rows := campaign.Summarize(rs2)
	fmt.Println("performance-guest IPC by cell:")
	for _, r := range rows {
		if r.Metric == "ipc:perf" || r.Metric == "ipc:app" {
			fmt.Printf("  %-28s %.4f ±%.4f (n=%d)\n", r.Key, r.Mean, r.CI95, r.N)
		}
	}
	fmt.Println()

	// The same rows serialize deterministically as JSON or CSV.
	fmt.Println("CSV emission:")
	if err := stats.WriteRowsCSV(os.Stdout, rows[:4]); err != nil {
		log.Fatal(err)
	}
}
