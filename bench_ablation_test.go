// Ablation benchmarks for the design choices DESIGN.md calls out: the
// memory-consistency model (the paper's largest Reunion-overhead
// contributor) and the Leave-DMR flush rate (the paper's pessimistic
// 1-line-per-cycle assumption).
package repro

import (
	"fmt"
	"testing"

	"repro/internal/exp"
)

// BenchmarkAblationTSO compares Reunion's normalized IPC under the
// paper's sequential consistency against TSO (the original Reunion
// paper's model). Smolens: SC costs Reunion ~30% on average — TSO
// should recover most of it.
func BenchmarkAblationTSO(b *testing.B) {
	cfg := benchConfig(b)
	for i := 0; i < b.N; i++ {
		rows, err := exp.TSOAblation(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			fmt.Println(exp.TSOTable(rows))
			for _, r := range rows {
				b.ReportMetric(r.ReunionSC.Mean(), r.Workload+":SC")
				b.ReportMetric(r.ReunionTSO.Mean(), r.Workload+":TSO")
			}
		}
	}
}

// BenchmarkAblationFlushRate sweeps the one-line-per-cycle flush
// assumption behind Table 1's ~10k-cycle Leave-DMR cost.
func BenchmarkAblationFlushRate(b *testing.B) {
	cfg := benchConfig(b)
	for i := 0; i < b.N; i++ {
		rows, err := exp.FlushAblation(cfg, "oltp")
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			fmt.Println(exp.FlushTable("oltp", rows))
			for _, r := range rows {
				b.ReportMetric(r.Leave.Mean(), fmt.Sprintf("flush%d:leave-cycles", r.LinesPerCycle))
			}
		}
	}
}
